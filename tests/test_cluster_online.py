"""Online dispatch and work stealing in the event-driven cluster layer.

Three claims under test:

1. *Online dispatch wins on skew.*  When predictions overestimate a
   device's backlog (a task finishes earlier than predicted), per-arrival
   routing against live device state achieves a makespan no worse -- and
   on the crafted workload strictly better -- than the static up-front
   pass over the same estimates.
2. *Migration is conservative.*  Work stealing never simulates a task
   twice, executes every task's full ground-truth cycle count exactly
   once cluster-wide, and only ever moves never-dispatched tasks.
3. *Degenerate shapes hold.*  Single-device clusters make every routing
   strategy identical, and devices that receive no work report None.
"""

import pytest

from repro.core.context import TaskContext
from repro.core.tokens import Priority
from repro.models.layers import LayerKind
from repro.npu.engine import ExecutionProfile, LayerTiming
from repro.sched.cluster import ClusterScheduler, RoutingPolicy
from repro.sched.policies import make_policy
from repro.sched.simulator import (
    NPUSimulator,
    PreemptionMode,
    SimulationConfig,
)
from repro.sched.task import TaskRuntime
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.specs import TaskSpec


def synthetic_task(
    task_id: int, arrival: float, estimated: float, actual: float
) -> TaskRuntime:
    """A one-layer task with full control of estimate vs ground truth."""
    layer = LayerTiming(
        name="gemm", kind=LayerKind.FC, cycles=actual, total_tiles=1,
        tile_cycles=actual, checkpoint=None, macs=0,
    )
    profile = ExecutionProfile(
        name=f"syn{task_id}", batch=1, layers=(layer,),
        layer_starts=(0.0,), total_cycles=actual,
    )
    spec = TaskSpec(
        task_id=task_id, benchmark=f"syn{task_id}", batch=1,
        priority=Priority.MEDIUM, arrival_cycles=arrival,
    )
    context = TaskContext(
        task_id=task_id, priority=Priority.MEDIUM, benchmark=spec.benchmark,
        estimated_cycles=estimated, last_update_cycles=arrival,
    )
    return TaskRuntime(spec=spec, profile=profile, context=context)


def skewed_workload():
    """Arrivals in two waves; task 0's estimate is a 10x overestimate.

    Static routing keeps avoiding device 0 long after task 0 actually
    finished; online routing sees the device free at the second wave.
    """
    return [
        synthetic_task(0, 0.0, estimated=1000.0, actual=100.0),
        synthetic_task(1, 1.0, estimated=800.0, actual=800.0),
        synthetic_task(2, 200.0, estimated=500.0, actual=500.0),
        synthetic_task(3, 250.0, estimated=400.0, actual=400.0),
    ]


def burst_workload():
    """Simultaneous burst; device 0 drains early, leaving work queued on
    device 1 -- the stealing opportunity."""
    return [
        synthetic_task(0, 0.0, estimated=1000.0, actual=100.0),
        synthetic_task(1, 0.0, estimated=1000.0, actual=1000.0),
        synthetic_task(2, 0.0, estimated=900.0, actual=400.0),
        synthetic_task(3, 0.0, estimated=850.0, actual=850.0),
    ]


def run_cluster(tasks, routing, num_devices=2, policy="FCFS",
                mode=PreemptionMode.NP, config=None):
    from repro.npu.config import NPUConfig

    cluster = ClusterScheduler(
        num_devices=num_devices,
        simulation_config=SimulationConfig(npu=config or NPUConfig(), mode=mode),
        policy_name=policy,
        routing=routing,
    )
    return cluster.run(tasks)


class TestOnlineVsStatic:
    def test_online_never_worse_on_skewed_workload(self):
        static = run_cluster(skewed_workload(), RoutingPolicy.STATIC)
        online = run_cluster(skewed_workload(), RoutingPolicy.ONLINE_PREDICTED)
        assert online.makespan_cycles <= static.makespan_cycles
        # On this crafted skew the win is strict.
        assert online.makespan_cycles < static.makespan_cycles

    def test_work_stealing_never_worse_than_online(self):
        online = run_cluster(burst_workload(), RoutingPolicy.ONLINE_PREDICTED)
        stealing = run_cluster(burst_workload(), RoutingPolicy.WORK_STEALING)
        assert stealing.makespan_cycles <= online.makespan_cycles
        assert stealing.makespan_cycles < online.makespan_cycles
        assert stealing.migration_count >= 1

    def test_online_beats_static_on_generated_skew(self, config, factory):
        # Averaged over real generated workloads (mispredicted RNN unrolls
        # supply the estimate error), online routing should not lose.
        workloads = WorkloadGenerator(
            seed=77, arrival_window_cycles=config.ms_to_cycles(20.0)
        ).generate_many(5, num_tasks=12)

        def mean_makespan(routing):
            total = 0.0
            for workload in workloads:
                result = run_cluster(
                    factory.build_workload(workload), routing,
                    policy="PREMA", mode=PreemptionMode.DYNAMIC,
                    config=config,
                )
                total += result.makespan_cycles
            return total / len(workloads)

        assert mean_makespan(RoutingPolicy.ONLINE_PREDICTED) <= \
            mean_makespan(RoutingPolicy.STATIC) * 1.02


class TestMigrationCorrectness:
    def test_no_task_simulated_twice(self):
        result = run_cluster(burst_workload(), RoutingPolicy.WORK_STEALING)
        seen = {}
        for device, device_result in enumerate(result.device_results):
            if device_result is None:
                continue
            for task in device_result.tasks:
                assert task.task_id not in seen, (
                    f"task {task.task_id} on devices {seen[task.task_id]} "
                    f"and {device}"
                )
                seen[task.task_id] = device
        assert set(seen) == {t.task_id for t in result.tasks}
        # Final assignments point at the executing device.
        for task_id, device in result.assignments.items():
            assert seen[task_id] == device

    def test_executed_cycles_conserved(self):
        result = run_cluster(burst_workload(), RoutingPolicy.WORK_STEALING)
        run_cycles = result.timeline.run_cycles_by_task()
        for task in result.tasks:
            assert run_cycles[task.task_id] == pytest.approx(
                task.profile.total_cycles
            )
        result.timeline.verify_no_overlap()

    def test_conservation_with_preemptive_devices(self, config, factory):
        # CHECKPOINT preemption retains progress, so cluster-wide RUN
        # cycles still equal each task's isolated cycles even with
        # preemptions and migrations in play.
        workload = WorkloadGenerator(
            seed=78, arrival_window_cycles=config.ms_to_cycles(10.0)
        ).generate(num_tasks=12)
        result = run_cluster(
            factory.build_workload(workload), RoutingPolicy.WORK_STEALING,
            num_devices=3, policy="PREMA", mode=PreemptionMode.DYNAMIC,
            config=config,
        )
        run_cycles = result.timeline.run_cycles_by_task()
        for task in result.tasks:
            assert run_cycles[task.task_id] == pytest.approx(
                task.profile.total_cycles, rel=1e-9
            )
        result.timeline.verify_no_overlap()

    def test_simultaneous_idle_devices_share_the_spoils(self):
        # Devices 1 and 2 finish at the same cycle while device 0 holds
        # two queued tasks: each idle device must steal exactly one (the
        # first thief's pending stolen arrival makes it non-idle for the
        # second steal pass at the same timestamp).
        tasks = [
            # Devices 0 and 1 run tasks that both complete at cycle 113.
            synthetic_task(0, 0.0, estimated=113.0, actual=113.0),
            synthetic_task(1, 1.0, estimated=112.0, actual=112.0),
            # Underestimated hog on device 2: its estimate is exhausted
            # by cycle 7, so device 2 looks free and attracts the next
            # two arrivals, which queue behind it (NP, never preempted).
            synthetic_task(2, 2.0, estimated=5.0, actual=10000.0),
            synthetic_task(3, 8.0, estimated=3.0, actual=400.0),
            synthetic_task(4, 9.0, estimated=300.0, actual=300.0),
        ]
        result = run_cluster(tasks, RoutingPolicy.WORK_STEALING,
                             num_devices=3)
        stolen = {m.task_id: m.to_device for m in result.migrations}
        assert set(stolen) == {3, 4}
        assert sorted(stolen.values()) == [0, 1]

    def test_migrated_tasks_were_never_dispatched_at_source(self):
        result = run_cluster(burst_workload(), RoutingPolicy.WORK_STEALING)
        assert result.migrations
        for migration in result.migrations:
            task = next(
                t for t in result.tasks if t.task_id == migration.task_id
            )
            assert task.first_dispatch_time is not None
            assert task.first_dispatch_time >= migration.time_cycles
            assert result.assignments[migration.task_id] == migration.to_device

    def test_static_routing_matches_isolated_devices(self, config, factory):
        # The shared event loop must not perturb statically routed runs:
        # completion times equal simulating each partition in isolation.
        workload = WorkloadGenerator(
            seed=79, arrival_window_cycles=config.ms_to_cycles(15.0)
        ).generate(num_tasks=10)
        sim_config = SimulationConfig(npu=config, mode=PreemptionMode.DYNAMIC)
        cluster = ClusterScheduler(
            3, sim_config, "PREMA", RoutingPolicy.LEAST_LOADED
        )
        cluster_result = cluster.run(factory.build_workload(workload))
        assignments = cluster.route(factory.build_workload(workload))
        partitions = {}
        for task in factory.build_workload(workload):
            partitions.setdefault(assignments[task.task_id], []).append(task)
        isolated = {}
        for partition in partitions.values():
            run = NPUSimulator(sim_config, make_policy("PREMA")).run(partition)
            for task in run.tasks:
                isolated[task.task_id] = task.completion_time
        assert isolated == {
            t.task_id: t.completion_time for t in cluster_result.tasks
        }

    def test_static_equivalence_across_drain_gap(self, config, factory):
        # A device that finishes everything before its next assigned
        # arrival must keep its scheduling-period clock anchored at its
        # *first* arrival (as the batch simulator does), not re-anchor at
        # the late arrival -- token-grant timing would otherwise shift
        # and change PREMA's decisions.
        early = WorkloadGenerator(
            seed=80, arrival_window_cycles=config.ms_to_cycles(5.0)
        ).generate(num_tasks=4)
        gap = max(
            factory.build_task(spec).profile.total_cycles
            for spec in early.tasks
        ) * 6.0
        late = [
            TaskSpec(
                task_id=spec.task_id + 100,
                benchmark=spec.benchmark,
                batch=spec.batch,
                priority=spec.priority,
                arrival_cycles=spec.arrival_cycles + gap,
                input_len=spec.input_len,
                actual_output_len=spec.actual_output_len,
            )
            for spec in early.tasks
        ]
        specs = list(early.tasks) + late

        def build():
            return [factory.build_task(spec) for spec in specs]

        sim_config = SimulationConfig(npu=config, mode=PreemptionMode.DYNAMIC)
        isolated = NPUSimulator(sim_config, make_policy("PREMA")).run(build())
        cluster = ClusterScheduler(
            1, sim_config, "PREMA", RoutingPolicy.ROUND_ROBIN
        ).run(build())
        assert {t.task_id: t.completion_time for t in isolated.tasks} == \
            {t.task_id: t.completion_time for t in cluster.tasks}


class TestEdgeCases:
    def test_single_device_all_routings_identical(self):
        results = {
            routing: run_cluster(skewed_workload(), routing, num_devices=1)
            for routing in RoutingPolicy
        }
        makespans = {r.makespan_cycles for r in results.values()}
        assert len(makespans) == 1
        assert all(not r.migrations for r in results.values())

    def test_more_devices_than_tasks(self):
        result = run_cluster(
            burst_workload(), RoutingPolicy.WORK_STEALING, num_devices=6
        )
        assert result.num_devices == 6
        empty = [r for r in result.device_results if r is None]
        assert len(empty) >= 2
        assert all(task.is_done for task in result.tasks)
        utilization = result.device_utilization()
        assert len(utilization) == 6
        assert all(0.0 <= u <= 1.0 for u in utilization)

    def test_single_task_cluster(self):
        result = run_cluster(
            [synthetic_task(0, 0.0, 100.0, 100.0)],
            RoutingPolicy.WORK_STEALING, num_devices=3,
        )
        assert result.tasks[0].is_done
        assert result.migration_count == 0

    def test_route_raises_for_online_strategies(self):
        from repro.npu.config import NPUConfig

        cluster = ClusterScheduler(
            2, SimulationConfig(npu=NPUConfig()),
            routing=RoutingPolicy.ONLINE_PREDICTED,
        )
        with pytest.raises(ValueError):
            cluster.route([synthetic_task(0, 0.0, 1.0, 1.0)])

    def test_cluster_timeline_reports_devices(self):
        result = run_cluster(burst_workload(), RoutingPolicy.WORK_STEALING)
        assert len(result.timeline) >= 1
        assert result.timeline.busy_cycles() > 0
        assert "NPU" in result.timeline.render_ascii()
