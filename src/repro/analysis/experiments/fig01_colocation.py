"""Fig 1: the co-location motivation (GoogLeNet + ResNet under NP-FCFS).

The paper's Fig 1 measures TensorRT Inference Server on a V100: serving
two models from one accelerator raises *per-accelerator* throughput
(idle gaps of one stream absorb the other stream's work) at the cost of
average latency (requests queue behind the co-tenant).  We reproduce the
shape with open-loop request streams on the simulated NPU:

- isolated: each model's stream is served by its own NPU;
- co-located: both streams share a single NPU under NP-FCFS.

Reported: per-NPU throughput (inferences/s/NPU) and mean request latency.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Optional, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.core.tokens import Priority
from repro.npu.config import NPUConfig
from repro.sched.policies import make_policy
from repro.sched.prepare import TaskFactory
from repro.sched.simulator import NPUSimulator, PreemptionMode, SimulationConfig
from repro.sched.task import TaskRuntime
from repro.workloads.specs import TaskSpec


@dataclasses.dataclass(frozen=True)
class ColocationResult:
    """Throughput/latency of one serving configuration."""

    label: str
    throughput_per_npu: float
    mean_latency_ms: float


def _request_stream(
    benchmark: str,
    num_requests: int,
    mean_gap_cycles: float,
    start_id: int,
    rng: random.Random,
) -> List[TaskSpec]:
    """Open-loop request stream with exponential inter-arrival gaps."""
    specs = []
    clock = 0.0
    for index in range(num_requests):
        clock += rng.expovariate(1.0 / mean_gap_cycles)
        specs.append(
            TaskSpec(
                task_id=start_id + index,
                benchmark=benchmark,
                batch=1,
                priority=Priority.MEDIUM,
                arrival_cycles=clock,
            )
        )
    return specs


def _serve(
    specs: Sequence[TaskSpec],
    factory: TaskFactory,
    config: NPUConfig,
) -> Tuple[float, float]:
    """(completed inferences per second, mean latency ms) for one NPU."""
    ordered = sorted(specs, key=lambda spec: spec.arrival_cycles)
    reindexed = [
        dataclasses.replace(spec, task_id=index)
        for index, spec in enumerate(ordered)
    ]
    simulator = NPUSimulator(
        SimulationConfig(npu=config, mode=PreemptionMode.NP),
        make_policy("FCFS"),
    )
    tasks: List[TaskRuntime] = [factory.build_task(s) for s in reindexed]
    result = simulator.run(tasks)
    span_s = config.cycles_to_seconds(result.makespan_cycles)
    throughput = len(tasks) / span_s
    mean_latency_cycles = sum(t.turnaround_cycles for t in tasks) / len(tasks)
    return throughput, config.cycles_to_ms(mean_latency_cycles)


def run_fig01(
    config: Optional[NPUConfig] = None,
    num_requests: int = 40,
    utilization: float = 0.4,
    seed: int = 1,
    factory: Optional[TaskFactory] = None,
) -> List[ColocationResult]:
    """Serve GoogLeNet/ResNet streams isolated and co-located.

    ``utilization`` sets each stream's offered load relative to its
    model's isolated service rate.  The default 0.4 keeps the combined
    co-located load under capacity (0.8), the underutilized-datacenter
    regime whose idle gaps co-location exploits (the paper quotes >5x
    utilization gains from multi-tenancy in this regime).
    """
    config = config or NPUConfig()
    factory = factory or TaskFactory(config)
    if not 0 < utilization < 1:
        raise ValueError("utilization must be in (0, 1)")
    rng = random.Random(seed)
    results: List[ColocationResult] = []
    # Both streams span the same wall-clock window (sized so the slower
    # model sends ``num_requests``); per-model request counts follow from
    # the offered load, so the co-located NPU sees both tenants for the
    # whole window rather than idling after the faster stream drains.
    services = {
        benchmark: factory.execution_profile(benchmark, 1).total_cycles
        for benchmark in ("CNN-GN", "RESNET")
    }
    window = num_requests * max(services.values()) / utilization
    streams = {}
    for benchmark, service in services.items():
        count = max(1, int(window * utilization / service))
        streams[benchmark] = _request_stream(
            benchmark, count, service / utilization, 0, rng
        )
    # Isolated: one NPU per model.
    iso_throughputs = []
    for benchmark, specs in streams.items():
        throughput, latency = _serve(specs, factory, config)
        iso_throughputs.append(throughput)
        results.append(
            ColocationResult(
                label=f"isolated-{benchmark}",
                throughput_per_npu=throughput,
                mean_latency_ms=latency,
            )
        )
    results.append(
        ColocationResult(
            label="isolated-mean",
            throughput_per_npu=sum(iso_throughputs) / len(iso_throughputs),
            mean_latency_ms=sum(r.mean_latency_ms for r in results) / 2,
        )
    )
    # Co-located: both streams share one NPU.
    merged = list(streams["CNN-GN"]) + list(streams["RESNET"])
    throughput, latency = _serve(merged, factory, config)
    results.append(
        ColocationResult(
            label="co-located",
            throughput_per_npu=throughput,
            mean_latency_ms=latency,
        )
    )
    return results


def improvement_summary(results: Sequence[ColocationResult]) -> dict:
    by_label = {r.label: r for r in results}
    isolated = by_label["isolated-mean"]
    colocated = by_label["co-located"]
    return {
        "throughput_gain": colocated.throughput_per_npu
        / isolated.throughput_per_npu,
        "latency_degradation": colocated.mean_latency_ms
        / isolated.mean_latency_ms,
    }


def format_fig01(results: Sequence[ColocationResult]) -> str:
    table = format_table(
        ("config", "inferences/s/NPU", "mean_latency_ms"),
        [(r.label, r.throughput_per_npu, r.mean_latency_ms) for r in results],
        title="Fig 1: co-location throughput vs latency (NP-FCFS)",
    )
    summary = improvement_summary(results)
    return (
        table
        + f"\n  throughput gain: {summary['throughput_gain']:.2f}x"
        + f"\n  latency degradation: {summary['latency_degradation']:.2f}x"
    )
