"""Ablation studies for the design choices DESIGN.md calls out.

1. **Predictor-noise ablation** (extends Sec VI-D): PREMA's scheduling
   quality as the latency estimate degrades.  Each task's
   ``Time_estimated`` is perturbed by seeded multiplicative lognormal
   noise at increasing levels; the oracle corresponds to sigma=0 with
   exact values.  The paper claims relative (not absolute) accuracy is
   what matters -- this harness quantifies how much error PREMA tolerates
   before losing its edge over NP-FCFS.

2. **Trap-cost ablation**: how expensive may the preemption trap
   (checkpoint overhead beyond the DMA) become before preemptive PREMA
   stops beating the non-preemptive baseline?  Sweeps the trap cost from
   the default 1k cycles (~1.4 us) up to millisecond scale.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Optional, Sequence


from repro.analysis.reporting import format_table
from repro.npu.config import NPUConfig
from repro.sched.metrics import aggregate_metrics
from repro.sched.policies import make_policy
from repro.sched.prepare import TaskFactory
from repro.sched.simulator import NPUSimulator, PreemptionMode, SimulationConfig
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.specs import WorkloadSpec


@dataclasses.dataclass(frozen=True)
class NoiseAblationRow:
    """PREMA quality at one predictor-noise level."""

    noise_sigma: float
    antt: float
    stp: float
    fairness: float
    antt_vs_fcfs: float


@dataclasses.dataclass(frozen=True)
class TrapAblationRow:
    """PREMA quality at one preemption-trap cost."""

    trap_cycles: int
    trap_us: float
    antt_vs_fcfs: float
    stp_vs_fcfs: float
    preemptions: int


def _run_prema(
    workloads: Sequence[WorkloadSpec],
    factory: TaskFactory,
    config: NPUConfig,
    noise_sigma: float = 0.0,
    noise_seed: int = 5,
):
    simulator = NPUSimulator(
        SimulationConfig(npu=config, mode=PreemptionMode.DYNAMIC),
        make_policy("PREMA"),
    )
    rng = random.Random(noise_seed)
    runs = []
    results = []
    for workload in workloads:
        tasks = factory.build_workload(workload)
        if noise_sigma > 0:
            for task in tasks:
                factor = rng.lognormvariate(0.0, noise_sigma)
                task.context.estimated_cycles *= factor
        results.append(simulator.run(tasks))
        runs.append(tasks)
    return aggregate_metrics(runs), results


def _run_fcfs(workloads, factory, config):
    simulator = NPUSimulator(
        SimulationConfig(npu=config, mode=PreemptionMode.NP),
        make_policy("FCFS"),
    )
    runs = []
    for workload in workloads:
        tasks = factory.build_workload(workload)
        simulator.run(tasks)
        runs.append(tasks)
    return aggregate_metrics(runs)


def run_noise_ablation(
    config: Optional[NPUConfig] = None,
    factory: Optional[TaskFactory] = None,
    num_workloads: int = 8,
    sigmas: Sequence[float] = (0.0, 0.1, 0.3, 0.7, 1.5),
    seed: int = 44,
) -> List[NoiseAblationRow]:
    config = config or NPUConfig()
    factory = factory or TaskFactory(config)
    workloads = WorkloadGenerator(seed=seed).generate_many(
        num_workloads, num_tasks=8
    )
    fcfs = _run_fcfs(workloads, factory, config)
    rows: List[NoiseAblationRow] = []
    for sigma in sigmas:
        metrics, _ = _run_prema(workloads, factory, config, noise_sigma=sigma)
        rows.append(
            NoiseAblationRow(
                noise_sigma=sigma,
                antt=metrics.mean_antt,
                stp=metrics.mean_stp,
                fairness=metrics.mean_fairness,
                antt_vs_fcfs=fcfs.mean_antt / metrics.mean_antt,
            )
        )
    return rows


def run_trap_ablation(
    factory_seed_config: Optional[NPUConfig] = None,
    num_workloads: int = 6,
    trap_cycles: Sequence[int] = (1_000, 10_000, 100_000, 1_000_000),
    seed: int = 45,
) -> List[TrapAblationRow]:
    workloads = WorkloadGenerator(seed=seed).generate_many(
        num_workloads, num_tasks=8
    )
    rows: List[TrapAblationRow] = []
    for cost in trap_cycles:
        config = NPUConfig(preemption_trap_cycles=cost)
        factory = TaskFactory(config)
        fcfs = _run_fcfs(workloads, factory, config)
        metrics, results = _run_prema(workloads, factory, config)
        rows.append(
            TrapAblationRow(
                trap_cycles=cost,
                trap_us=config.cycles_to_us(cost),
                antt_vs_fcfs=fcfs.mean_antt / metrics.mean_antt,
                stp_vs_fcfs=metrics.mean_stp / fcfs.mean_stp,
                preemptions=sum(r.preemption_count for r in results),
            )
        )
    return rows


def format_noise_ablation(rows: Sequence[NoiseAblationRow]) -> str:
    return format_table(
        ("noise_sigma", "ANTT", "STP", "fairness", "ANTT_vs_FCFS"),
        [(r.noise_sigma, r.antt, r.stp, r.fairness, r.antt_vs_fcfs)
         for r in rows],
        title="Ablation: PREMA vs predictor noise (extends Sec VI-D)",
    )


def format_trap_ablation(rows: Sequence[TrapAblationRow]) -> str:
    return format_table(
        ("trap_cycles", "trap_us", "ANTT_vs_FCFS", "STP_vs_FCFS",
         "preemptions"),
        [(r.trap_cycles, r.trap_us, r.antt_vs_fcfs, r.stp_vs_fcfs,
          r.preemptions) for r in rows],
        title="Ablation: preemption-trap cost sweep",
    )
