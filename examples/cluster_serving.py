#!/usr/bin/env python
"""Node-level serving across multiple preemptible NPUs.

The paper (Sec II-C) scopes itself to one NPU and leaves multi-NPU
node-level policy as future work.  This example runs that layer: a
Kubernetes-style router dispatches a burst of mixed-tenant requests to a
pool of NPUs, comparing blind round-robin routing against predictive
least-loaded routing (which reuses PREMA's Algorithm-1 estimates), with
NP-FCFS vs PREMA devices underneath.

Run:  python examples/cluster_serving.py [num_devices]
"""

import sys

from repro import NPUConfig, TaskFactory, WorkloadGenerator, compute_metrics
from repro.sched.cluster import ClusterScheduler, RoutingPolicy
from repro.sched.simulator import PreemptionMode, SimulationConfig

COMBOS = (
    ("round-robin + NP-FCFS", RoutingPolicy.ROUND_ROBIN, "FCFS",
     PreemptionMode.NP),
    ("round-robin + PREMA", RoutingPolicy.ROUND_ROBIN, "PREMA",
     PreemptionMode.DYNAMIC),
    ("least-loaded + NP-FCFS", RoutingPolicy.LEAST_LOADED, "FCFS",
     PreemptionMode.NP),
    ("least-loaded + PREMA", RoutingPolicy.LEAST_LOADED, "PREMA",
     PreemptionMode.DYNAMIC),
)


def main(num_devices: int = 4) -> None:
    config = NPUConfig()
    factory = TaskFactory(config)
    workload = WorkloadGenerator(
        seed=8, arrival_window_cycles=config.ms_to_cycles(25.0)
    ).generate(num_tasks=24)
    print(
        f"Routing {len(workload)} requests onto {num_devices} NPUs "
        f"(arrival window 25 ms)\n"
    )
    print(f"{'configuration':26s} {'ANTT':>7s} {'fairness':>9s} "
          f"{'makespan ms':>12s} {'device utilization':>22s}")
    for label, routing, policy, mode in COMBOS:
        cluster = ClusterScheduler(
            num_devices=num_devices,
            simulation_config=SimulationConfig(npu=config, mode=mode),
            policy_name=policy,
            routing=routing,
        )
        tasks = factory.build_workload(workload)
        result = cluster.run(tasks)
        metrics = compute_metrics(result.tasks)
        utilization = " ".join(
            f"{u:4.0%}" for u in result.device_utilization()
        )
        print(
            f"{label:26s} {metrics.antt:7.2f} {metrics.fairness:9.3f} "
            f"{config.cycles_to_ms(result.makespan_cycles):12.2f} "
            f"{utilization:>22s}"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
