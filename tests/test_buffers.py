"""On-chip buffer occupancy + checkpoint-size profiles (Sec IV-B)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.npu.buffers import (
    BufferTracker,
    CheckpointProfile,
    layer_checkpoint_profile,
)


class TestCheckpointProfile:
    def test_zero_progress_only_accq(self):
        profile = CheckpointProfile(
            out_bytes_per_tile=100, total_tiles=10, ubuf_cap_bytes=10_000,
            accq_bytes=50,
        )
        assert profile.bytes_at(0) == 50

    def test_grows_with_progress(self):
        profile = CheckpointProfile(
            out_bytes_per_tile=100, total_tiles=10, ubuf_cap_bytes=10_000,
            accq_bytes=50,
        )
        assert profile.bytes_at(5) == 5 * 100 + 50

    def test_capped_by_ubuf(self):
        profile = CheckpointProfile(
            out_bytes_per_tile=100, total_tiles=100, ubuf_cap_bytes=1_000,
            accq_bytes=50,
        )
        assert profile.bytes_at(99) == 1_000 + 50

    def test_completed_layer_has_no_accq_state(self):
        profile = CheckpointProfile(
            out_bytes_per_tile=100, total_tiles=10, ubuf_cap_bytes=10_000,
            accq_bytes=50,
        )
        assert profile.bytes_at(10) == 1_000

    def test_beyond_total_clamps(self):
        profile = CheckpointProfile(
            out_bytes_per_tile=100, total_tiles=10, ubuf_cap_bytes=10_000,
            accq_bytes=50,
        )
        assert profile.bytes_at(200) == profile.bytes_at(10)

    def test_max_bytes_is_worst_case(self):
        profile = CheckpointProfile(
            out_bytes_per_tile=100, total_tiles=10, ubuf_cap_bytes=10_000,
            accq_bytes=50,
        )
        worst = max(profile.bytes_at(t) for t in range(11))
        assert profile.max_bytes == worst

    def test_rejects_negative_fields(self):
        with pytest.raises(ValueError):
            CheckpointProfile(-1, 10, 100, 10)
        with pytest.raises(ValueError):
            CheckpointProfile(1, -10, 100, 10)
        with pytest.raises(ValueError):
            CheckpointProfile(1, 10, -100, 10)

    def test_rejects_negative_progress(self):
        profile = CheckpointProfile(100, 10, 10_000, 50)
        with pytest.raises(ValueError):
            profile.bytes_at(-1)

    @given(
        per_tile=st.floats(min_value=0, max_value=1e6),
        tiles=st.integers(min_value=0, max_value=500),
        done=st.integers(min_value=0, max_value=600),
    )
    @settings(max_examples=60, deadline=None)
    def test_bytes_never_exceed_capacity(self, per_tile, tiles, done):
        cap, accq = 8 << 20, 1 << 20
        profile = CheckpointProfile(per_tile, tiles, cap, accq)
        assert profile.bytes_at(done) <= cap + accq


class TestLayerCheckpointProfile:
    def test_accq_capped_by_config(self, config):
        profile = layer_checkpoint_profile(config, 1000.0, 10)
        assert profile.accq_bytes <= config.accq_bytes

    def test_ubuf_cap_from_config(self, config):
        profile = layer_checkpoint_profile(config, 1e9, 10)
        assert profile.ubuf_cap_bytes == config.ubuf_bytes
        assert profile.bytes_at(10) == config.ubuf_bytes

    def test_data_bytes_applied(self, config):
        profile = layer_checkpoint_profile(config, 500.0, 4)
        assert profile.out_bytes_per_tile == 500.0 * config.data_bytes


class TestBufferTracker:
    def test_allocate_and_free(self, config):
        tracker = BufferTracker(config)
        tracker.allocate_ubuf(1024)
        assert tracker.ubuf_used == 1024
        tracker.free_ubuf(1024)
        assert tracker.ubuf_used == 0

    def test_ubuf_overflow_raises(self, config):
        tracker = BufferTracker(config)
        with pytest.raises(OverflowError):
            tracker.allocate_ubuf(config.ubuf_bytes + 1)

    def test_wbuf_overflow_raises(self, config):
        tracker = BufferTracker(config)
        with pytest.raises(OverflowError):
            tracker.allocate_wbuf(config.wbuf_bytes + 1)

    def test_invalid_free_raises(self, config):
        tracker = BufferTracker(config)
        with pytest.raises(ValueError):
            tracker.free_ubuf(1)
        with pytest.raises(ValueError):
            tracker.free_wbuf(1)

    def test_accq_fill_and_drain(self, config):
        tracker = BufferTracker(config)
        tracker.fill_accq(100)
        tracker.fill_accq(200)
        assert tracker.drain_accq() == 300
        assert tracker.accq_used == 0

    def test_accq_overflow_raises(self, config):
        tracker = BufferTracker(config)
        with pytest.raises(OverflowError):
            tracker.fill_accq(config.accq_bytes + 1)

    def test_reset(self, config):
        tracker = BufferTracker(config)
        tracker.allocate_ubuf(10)
        tracker.allocate_wbuf(10)
        tracker.fill_accq(10)
        tracker.reset()
        assert (tracker.ubuf_used, tracker.wbuf_used, tracker.accq_used) == (0, 0, 0)
