"""Cluster observability: tracing, streaming metrics, self-profiling.

Three independent, composable layers (``docs/observability.md``):

- :mod:`repro.obs.trace` -- structured span/instant events from every
  scheduler layer, exported as Chrome-trace/Perfetto JSON.
- :mod:`repro.obs.metrics` -- counters/gauges/histograms sampled on a
  cycle interval into bounded ring buffers.
- :mod:`repro.obs.profile` -- wall-time attribution of the scheduler's
  own hot paths (route, steal/migrate, admission, index maintenance,
  churn handling).

The contract: observability *off* is bit-for-bit (the default
:data:`~repro.obs.trace.NULL_TRACER` allocates nothing on the hot
path); observability *on* is bounded (every buffer has a capacity,
every tracer a ``max_events``) and cheap (gated in CI by the
traced-vs-untraced pair in ``benchmarks/bench_hotpath.py``).
"""

from repro.obs.metrics import MetricsSampler, RingBuffer
from repro.obs.profile import HotPathProfiler
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    load_chrome_trace,
    validate_chrome_trace,
)

__all__ = [
    "HotPathProfiler",
    "MetricsSampler",
    "NULL_TRACER",
    "NullTracer",
    "RingBuffer",
    "Tracer",
    "load_chrome_trace",
    "validate_chrome_trace",
]
