"""Regenerates paper Secs VI-F/G: implementation and storage overheads."""

from repro.analysis.experiments.overhead_analysis import (
    format_overhead,
    run_overhead,
)


def test_overhead(benchmark, config, factory, emit):
    report = benchmark.pedantic(
        run_overhead,
        kwargs=dict(config=config, factory=factory, batch=16),
        rounds=1,
        iterations=1,
    )
    emit("overhead", format_overhead(report))
    # Sec VI-F: 448 bits/task, ~0.01 mm^2 for 16 tasks at 32 nm.
    assert report.bits_per_task == 448
    assert report.area_mm2_32nm < 0.02
    # Sec VI-G: per-task worst-case checkpoints are MB-scale; the total
    # fits comfortably in GBs of NPU-local DRAM.
    total_gb = report.checkpoint_bytes_by_model["TOTAL"] / 1e9
    assert total_gb < 1.0
