#!/usr/bin/env python
"""Preemption mechanism lab: dissect one preemption event end to end.

Recreates the paper's Sec IV study interactively: a long low-priority
VGG-16 inference is preempted by a high-priority task at a chosen point,
under each of KILL / CHECKPOINT / DRAIN.  For each mechanism the script
prints the microarchitectural anatomy (tile boundary snap, checkpointed
bytes, trap + DMA latency, restore cost) and the resulting schedule.

Run:  python examples/preemption_lab.py [preempt_fraction]
"""

import sys

from repro import NPUConfig, Priority, TaskFactory, mechanism_by_name
from repro.sched.metrics import compute_metrics
from repro.sched.policies import make_policy
from repro.sched.simulator import NPUSimulator, PreemptionMode, SimulationConfig
from repro.workloads.specs import TaskSpec


def anatomy(config: NPUConfig, factory: TaskFactory, fraction: float) -> None:
    profile = factory.execution_profile("CNN-VN", 4)
    offset = fraction * profile.total_cycles
    layer_index, intra = profile.locate(offset)
    layer = profile.layers[layer_index]
    print(
        f"Preemption request at {config.cycles_to_ms(offset):.3f} ms "
        f"({fraction:.0%} of VGG-16 b04, inside layer '{layer.name}', "
        f"tile {layer.tiles_done_at(intra)}/{layer.total_tiles})"
    )
    print(f"{'mechanism':12s} {'boundary_wait_us':>16s} {'ckpt_KB':>10s} "
          f"{'preempt_lat_us':>15s} {'restore_us':>11s} {'kept_progress':>14s}")
    for name in ("KILL", "CHECKPOINT", "DRAIN"):
        mechanism = mechanism_by_name(name, config)
        outcome = mechanism.preempt(profile, offset)
        boundary_wait = config.cycles_to_us(outcome.boundary_offset - offset)
        print(
            f"{name:12s} {boundary_wait:16.2f} "
            f"{outcome.checkpoint_bytes / 1024:10.1f} "
            f"{config.cycles_to_us(outcome.preemption_latency):15.2f} "
            f"{config.cycles_to_us(outcome.restore_latency):11.2f} "
            f"{outcome.retained_offset / profile.total_cycles:13.0%}"
        )


def schedule_outcomes(config: NPUConfig, factory: TaskFactory, fraction: float) -> None:
    low_iso = factory.execution_profile("CNN-VN", 4).total_cycles
    specs = [
        TaskSpec(0, "CNN-VN", 4, Priority.LOW, 0.0),
        TaskSpec(1, "CNN-GN", 1, Priority.HIGH, fraction * low_iso),
    ]
    print("\nResulting two-task schedules (low-pri VGG vs high-pri GoogLeNet):")
    print(f"{'config':22s} {'high-pri NTT':>13s} {'low-pri NTT':>12s} {'STP':>6s}")
    configs = [
        ("NP-FCFS (baseline)", "FCFS", PreemptionMode.NP, "CHECKPOINT"),
        ("P-HPF + KILL", "HPF", PreemptionMode.STATIC, "KILL"),
        ("P-HPF + CHECKPOINT", "HPF", PreemptionMode.STATIC, "CHECKPOINT"),
        ("PREMA dynamic", "PREMA", PreemptionMode.DYNAMIC, "CHECKPOINT"),
    ]
    for label, policy, mode, mechanism in configs:
        simulator = NPUSimulator(
            SimulationConfig(npu=config, mode=mode, mechanism=mechanism),
            make_policy(policy),
        )
        tasks = [factory.build_task(spec) for spec in specs]
        result = simulator.run(tasks)
        metrics = compute_metrics(result.tasks)
        print(
            f"{label:22s} {metrics.ntt_by_task[1]:13.2f} "
            f"{metrics.ntt_by_task[0]:12.2f} {metrics.stp:6.2f}"
        )
        print(result.timeline.render_ascii(
            width=64, label_by_task={0: "VGG(low)", 1: "GN(high)"}
        ))


def main() -> None:
    fraction = float(sys.argv[1]) if len(sys.argv) > 1 else 0.35
    if not 0.0 < fraction < 1.0:
        raise SystemExit("preempt_fraction must be in (0, 1)")
    config = NPUConfig()
    factory = TaskFactory(config)
    anatomy(config, factory, fraction)
    schedule_outcomes(config, factory, fraction)


if __name__ == "__main__":
    main()
