"""Index-vs-linear-scan equivalence of the O(log d) cluster control plane.

The cluster loop's indexes (`_ClusterIndexes`: the device-event heap fed
by ``DeviceSim.on_next_event_change``, the backlog-bound best-first
router, and the idle/steal/source candidate sets) promise *re-plumbing,
not re-scheduling*: every consultation must return exactly what the
reference scan over the whole fleet returns.  The reference loop is kept
alive behind ``use_indexes=False``, which makes the property direct to
state: the same workload run through both loops must produce identical
results, bit for bit -- placements, migrations, transfers, timelines,
waits, and tokens alike (the two loops execute the *same* float
operations, so not even the 1e-9 golden tolerance is needed here).

``verify_indexes=True`` additionally cross-checks every single
consultation (event peek, routing argmin, candidate-set coverage)
against the linear scan inside the run and raises on the first
divergence, which pins equivalence at event granularity rather than
end-of-run granularity.
"""

import pytest

import helpers_golden
from repro.npu.config import NPUConfig
from repro.sched.cluster import (
    ClusterScheduler,
    ONLINE_ROUTINGS,
    RoutingPolicy,
)
from repro.sched.policies import POLICY_NAMES, make_policy
from repro.sched.simulator import DeviceSim, PreemptionMode, SimulationConfig
from repro.serving import AdmissionController, PredictionFeedback
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.trace import (
    DEFAULT_MEAN_INTERARRIVAL_CYCLES,
    synthetic_trace_runtimes,
)

QOS_MIX = {"interactive": 0.3, "standard": 0.4, "batch": 0.3}


def _synthetic_config() -> SimulationConfig:
    return SimulationConfig(
        npu=NPUConfig(),
        mode=PreemptionMode.DYNAMIC,
        mechanism="CHECKPOINT",
    )


def _run_synthetic(
    num_devices: int,
    routing: RoutingPolicy,
    seed: int = 17,
    num_tasks: int = 128,
    policy: str = "PREMA",
    use_indexes: bool = True,
    verify: bool = False,
    admission: bool = False,
):
    """One cluster run over a fresh synthetic open-arrival trace.

    The trace is rebuilt per call (runs mutate their task runtimes), and
    the arrival rate scales with the fleet so per-device load matches
    the single-device trace regime.
    """
    runtimes = synthetic_trace_runtimes(
        num_tasks,
        seed=seed,
        mean_interarrival_cycles=(
            DEFAULT_MEAN_INTERARRIVAL_CYCLES / num_devices
        ),
        qos_mix=QOS_MIX if admission else None,
    )
    controller = (
        AdmissionController(feedback=PredictionFeedback())
        if admission
        else None
    )
    scheduler = ClusterScheduler(
        num_devices=num_devices,
        simulation_config=_synthetic_config(),
        policy_name=policy,
        routing=routing,
        seed=seed,
        admission=controller,
        use_indexes=use_indexes,
        verify_indexes=verify,
    )
    return scheduler.run(runtimes)


def _assert_identical(reference, indexed, key: str) -> None:
    """Full-result identity, reusing the golden encoding (plus the raw
    assignment map and the admission outcome populations)."""
    assert indexed.assignments == reference.assignments, key
    assert indexed.events_processed == reference.events_processed, key
    assert (
        helpers_golden._encode_cluster_v2(indexed)
        == helpers_golden._encode_cluster_v2(reference)
    ), key
    assert (
        sorted(t.task_id for t in indexed.rejected_tasks)
        == sorted(t.task_id for t in reference.rejected_tasks)
    ), key


# ----------------------------------------------------------------------
# Indexed loop == reference loop, end to end
# ----------------------------------------------------------------------
@pytest.mark.parametrize("num_devices", [2, 4, 8])
def test_indexed_matches_reference_every_routing(factory, num_devices):
    """All 7 routings x rotating device schedulers on compiled workloads."""
    workloads = WorkloadGenerator(seed=205).generate_many(2, num_tasks=12)
    for index, workload in enumerate(workloads):
        policy = POLICY_NAMES[index % len(POLICY_NAMES)]
        mode, mechanism = helpers_golden.MODE_MECHANISMS[
            index % len(helpers_golden.MODE_MECHANISMS)
        ]
        config = SimulationConfig(
            npu=factory.config,
            mode=PreemptionMode(mode),
            mechanism=mechanism,
        )
        for routing in RoutingPolicy:
            results = {}
            for use_indexes in (False, True):
                scheduler = ClusterScheduler(
                    num_devices=num_devices,
                    simulation_config=config,
                    policy_name=policy,
                    routing=routing,
                    seed=index,
                    use_indexes=use_indexes,
                )
                results[use_indexes] = scheduler.run(
                    factory.build_workload(workload)
                )
            _assert_identical(
                results[False],
                results[True],
                f"{index}/{num_devices}dev/{routing.value}/{policy}",
            )


@pytest.mark.parametrize(
    "routing", sorted(ONLINE_ROUTINGS, key=lambda r: r.value)
)
def test_indexed_matches_reference_64_devices(routing):
    """The datacenter tier: 64 devices on a synthetic open-arrival trace."""
    results = {
        use_indexes: _run_synthetic(
            64, routing, seed=29, num_tasks=256, use_indexes=use_indexes
        )
        for use_indexes in (False, True)
    }
    assert len(results[True].tasks) == 256
    _assert_identical(results[False], results[True], f"64dev/{routing.value}")


@pytest.mark.parametrize(
    "policy",
    [
        # FCFS honors no class filter -> admission placement runs on the
        # backlog index; PREMA activates both filters -> the class-aware
        # linear fallback.  Both must match the reference loop exactly.
        "FCFS",
        "PREMA",
    ],
)
def test_indexed_matches_reference_with_admission(policy):
    results = {
        use_indexes: _run_synthetic(
            8,
            RoutingPolicy.ONLINE_PREDICTED,
            seed=41,
            num_tasks=160,
            policy=policy,
            use_indexes=use_indexes,
            admission=True,
        )
        for use_indexes in (False, True)
    }
    _assert_identical(results[False], results[True], f"admission/{policy}")


# ----------------------------------------------------------------------
# Per-consultation cross-checks (verify_indexes)
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "num_devices,routing,num_tasks",
    [
        (2, RoutingPolicy.WORK_STEALING, 96),
        (8, RoutingPolicy.WORK_STEALING, 160),
        (4, RoutingPolicy.PREEMPTIVE_MIGRATION, 96),
        (64, RoutingPolicy.ONLINE_PREDICTED, 256),
    ],
)
def test_verify_mode_cross_checks_every_consultation(
    num_devices, routing, num_tasks
):
    result = _run_synthetic(
        num_devices, routing, seed=53, num_tasks=num_tasks, verify=True
    )
    assert len(result.tasks) == num_tasks
    assert all(task.is_done for task in result.tasks)


def test_verify_mode_cross_checks_admission_placement():
    result = _run_synthetic(
        8,
        RoutingPolicy.ONLINE_PREDICTED,
        seed=59,
        num_tasks=120,
        policy="FCFS",
        verify=True,
        admission=True,
    )
    assert result.admission_records


# ----------------------------------------------------------------------
# The duplicate-id guard
# ----------------------------------------------------------------------
def test_duplicate_task_id_rejected():
    runtimes = synthetic_trace_runtimes(4, seed=3)
    scheduler = ClusterScheduler(
        num_devices=2,
        simulation_config=_synthetic_config(),
        routing=RoutingPolicy.ONLINE_PREDICTED,
    )
    duplicated = runtimes + [runtimes[1]]
    with pytest.raises(ValueError, match="duplicate task id 1"):
        scheduler.run(duplicated)


# ----------------------------------------------------------------------
# DeviceSim surfaces the indexes consume
# ----------------------------------------------------------------------
def test_event_change_hook_fires_only_on_head_changes():
    sim = DeviceSim(_synthetic_config(), make_policy("PREMA"))
    observed = []
    sim.on_next_event_change = lambda device: observed.append(
        device.next_event_key()
    )
    for runtime in synthetic_trace_runtimes(12, seed=7):
        sim.inject(runtime)
    assert observed, "injection must announce the first head key"
    # Drain the queue completely (trailing period ticks included) so the
    # final announcement is the dormant state.
    while sim.next_event_time() is not None:
        sim.step()
        assert observed[-1] == sim.next_event_key(), (
            "a step that moved the head key must re-announce it"
        )
    assert observed[-1] is None, "draining the queue announces dormancy"
    for earlier, later in zip(observed, observed[1:]):
        assert earlier != later, "the hook must coalesce unchanged keys"


def test_backlog_lower_bound_never_exceeds_exact_backlog():
    """The index-soundness invariant: bound <= predicted_backlog(now')
    for every probe instant at or after the device's current time."""
    sim = DeviceSim(_synthetic_config(), make_policy("PREMA"))
    for runtime in synthetic_trace_runtimes(64, seed=19):
        sim.inject(runtime)
    probes = 0
    while sim.has_live_tasks and sim.next_event_time() is not None:
        now = sim.step()
        bound = sim.backlog_lower_bound()
        for horizon in (0.0, 1e3, 1e6, 1e9):
            assert bound <= sim.predicted_backlog(now + horizon)
        if sim.is_idle(now):
            assert sim.maybe_idle, "is_idle must imply maybe_idle"
        probes += 1
    assert probes > 64


def test_candidate_properties_match_task_sets():
    """has_queued / has_preempted track the stealable populations."""
    sim = DeviceSim(_synthetic_config(), make_policy("PREMA"))
    for runtime in synthetic_trace_runtimes(48, seed=23):
        sim.inject(runtime)
    saw_queued = saw_preempted = False
    while sim.has_live_tasks and sim.next_event_time() is not None:
        now = sim.step()
        if sim.stealable_tasks():
            assert sim.has_queued
            saw_queued = True
        if sim.migratable_preempted_tasks(now):
            assert sim.has_preempted
            saw_preempted = True
    assert saw_queued and saw_preempted
