"""Multi-NPU node-level scheduling (the paper's Sec II-C future work).

The paper scopes itself to scheduling *after* Kubernetes routes requests
to one NPU and explicitly leaves node-level policy over multiple
preemptible NPUs as future work.  This module implements that layer as a
single **event-driven cluster simulation**: every device is a stepwise
:class:`~repro.sched.simulator.DeviceSim`, and one global loop interleaves
device events with cluster-level request arrivals in timestamp order.
Routing therefore happens *online* -- at the moment a request arrives the
router can read each device's live scheduler-visible state (context
tables, tokens, accounted progress of the running task) instead of only
the static arrival-order estimates.

Routing strategies (:class:`RoutingPolicy`):

``ROUND_ROBIN``
    Kubernetes-default rotation, blind to task sizes.
``RANDOM``
    Seeded uniform choice (the load-balancer strawman).
``LEAST_LOADED`` / ``STATIC``
    Predictive *static* routing: one up-front pass in arrival order
    assigns each request to the device whose estimated backlog lets it
    start earliest, using only the Algorithm-1 estimates (``STATIC`` is
    the same rule under the cluster-experiment naming).
``ONLINE_PREDICTED``
    Predictive *online* dispatch: the decision is deferred to the arrival
    event and uses each device's live predicted backlog -- estimated
    remaining cycles of its running + queued tasks, with the running
    task's progress refreshed to 'now'.  Tasks that finished earlier than
    predicted free their device immediately in the router's eyes, which
    static routing cannot see.
``WORK_STEALING``
    ``ONLINE_PREDICTED`` plus migration: whenever a device goes idle
    while another device still has *queued* (never-dispatched) tasks, the
    idle device steals the longest-estimated queued task from the most
    backlogged device.  Never-dispatched tasks carry no checkpoint state,
    so a migration moves only the context row (tokens travel with it).
``PREEMPTIVE_MIGRATION``
    ``WORK_STEALING`` plus *checkpoint migration*: when no queued task is
    stealable, an idle device pulls a **preempted** task -- one whose
    CONV/FC activations or RNN cell state already sit checkpointed in the
    source device's DRAM (``repro.npu.preemption``) -- by shipping that
    checkpoint over a modeled interconnect
    (:mod:`repro.sched.interconnect`): the transfer is charged real
    cycles, contends FIFO on its link, and the task only re-enters a
    ready queue when the bytes land.  Token accounting becomes
    cluster-global under this routing: a
    :class:`~repro.core.tokens.ClusterTokenLedger` keeps every device's
    Algorithm-2 candidate threshold consistent with the cluster-wide
    token maximum, so slowdown-normalized priority no longer depends on
    placement luck.

All strategies run through the same event loop; for the static strategies
each device's event sequence is identical to simulating its partition in
isolation, so pre-existing results remain bit-for-bit reproducible.
"""

from __future__ import annotations

import dataclasses
import enum
import random
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.context import TaskState
from repro.core.tokens import ClusterTokenLedger
from repro.sched.interconnect import (
    CONTEXT_ROW_BYTES,
    Interconnect,
    InterconnectConfig,
    TransferRecord,
)
from repro.sched.policies import make_policy
from repro.sched.simulator import (
    DeviceSim,
    SimulationConfig,
    SimulationResult,
    _EventKind,
)
from repro.sched.task import TaskRuntime
from repro.sched.timeline import ClusterTimeline


class RoutingPolicy(enum.Enum):
    ROUND_ROBIN = "round-robin"
    LEAST_LOADED = "least-loaded"
    RANDOM = "random"
    STATIC = "static"
    ONLINE_PREDICTED = "online-predicted"
    WORK_STEALING = "work-stealing"
    PREEMPTIVE_MIGRATION = "preemptive-migration"


#: Strategies resolved by one up-front routing pass (arrival order).
STATIC_ROUTINGS = frozenset(
    {
        RoutingPolicy.ROUND_ROBIN,
        RoutingPolicy.LEAST_LOADED,
        RoutingPolicy.RANDOM,
        RoutingPolicy.STATIC,
    }
)

#: Strategies deciding per-arrival against live device state.
ONLINE_ROUTINGS = frozenset(
    {
        RoutingPolicy.ONLINE_PREDICTED,
        RoutingPolicy.WORK_STEALING,
        RoutingPolicy.PREEMPTIVE_MIGRATION,
    }
)


@dataclasses.dataclass(frozen=True)
class MigrationRecord:
    """One migration of a task between devices.

    ``kind`` is ``"steal"`` for a row-only move (a never-dispatched
    task, or a KILL victim restarting from scratch) and ``"checkpoint"``
    when the task's saved state moved with it; ``arrival_cycles`` is
    when the task re-entered a ready queue at the destination.  Under
    ``WORK_STEALING`` steals are instantaneous (``arrival_cycles ==
    time_cycles``); under ``PREEMPTIVE_MIGRATION`` *every* move -- steals
    included -- crosses the interconnect and carries real in-flight
    latency.
    """

    task_id: int
    from_device: int
    to_device: int
    time_cycles: float
    kind: str = "steal"
    bytes_moved: float = 0.0
    arrival_cycles: float = 0.0

    @property
    def latency_cycles(self) -> float:
        """Cycles the task spent in flight (0 for WORK_STEALING steals)."""
        return max(0.0, self.arrival_cycles - self.time_cycles)


@dataclasses.dataclass(frozen=True)
class ClusterResult:
    """Outcome of one cluster run."""

    tasks: Tuple[TaskRuntime, ...]
    device_results: Tuple[Optional[SimulationResult], ...]
    #: Final placement: task id -> the device that executed it.
    assignments: Dict[int, int]
    routing: str = ""
    migrations: Tuple[MigrationRecord, ...] = ()
    timeline: Optional[ClusterTimeline] = None
    #: Interconnect transfers behind the checkpoint migrations.
    transfers: Tuple[TransferRecord, ...] = ()

    @property
    def num_devices(self) -> int:
        return len(self.device_results)

    @property
    def migration_count(self) -> int:
        return len(self.migrations)

    @property
    def checkpoint_migration_count(self) -> int:
        return sum(1 for m in self.migrations if m.kind == "checkpoint")

    @property
    def migrated_bytes_total(self) -> float:
        return sum(m.bytes_moved for m in self.migrations)

    @property
    def makespan_cycles(self) -> float:
        return max(
            result.makespan_cycles
            for result in self.device_results
            if result is not None
        )

    def device_utilization(self) -> List[float]:
        """Busy fraction of each device over the cluster makespan."""
        span = self.makespan_cycles
        utilization = []
        for result in self.device_results:
            if result is None or span == 0:
                utilization.append(0.0)
            else:
                utilization.append(result.timeline.busy_cycles() / span)
        return utilization


class ClusterScheduler:
    """Serve one request stream across N preemptible NPUs.

    One shared event loop drives every device; dispatch decisions fire at
    task-arrival events (and, under work stealing, at device-idle edges
    after any event).
    """

    def __init__(
        self,
        num_devices: int,
        simulation_config: SimulationConfig,
        policy_name: str = "PREMA",
        routing: RoutingPolicy = RoutingPolicy.LEAST_LOADED,
        seed: int = 0,
        interconnect: Optional[InterconnectConfig] = None,
        global_tokens: Optional[bool] = None,
    ) -> None:
        if num_devices <= 0:
            raise ValueError("num_devices must be positive")
        self.num_devices = num_devices
        self.simulation_config = simulation_config
        self.policy_name = policy_name
        self.routing = routing
        self._seed = seed
        #: Fabric checkpoint migrations cross.  Defaults to a PCIe-gen3
        #: bus at the NPU's clock; only PREEMPTIVE_MIGRATION ever uses it.
        self.interconnect = interconnect or InterconnectConfig.pcie_gen3(
            simulation_config.npu.frequency_hz
        )
        #: Cluster-global token thresholds (ClusterTokenLedger).  Defaults
        #: to on exactly for PREEMPTIVE_MIGRATION; every pre-existing
        #: routing keeps the per-device paper semantics bit-for-bit.
        if global_tokens is None:
            global_tokens = routing is RoutingPolicy.PREEMPTIVE_MIGRATION
        self.global_tokens = global_tokens

    # ------------------------------------------------------------------
    # Static routing (the up-front pass)
    # ------------------------------------------------------------------
    def route(self, tasks: Sequence[TaskRuntime]) -> Dict[int, int]:
        """Assign each task to a device, in arrival order (static pass).

        Uses only scheduler-visible state: arrival times and the
        Algorithm-1 estimates carried in each task's context row.  For
        ``LEAST_LOADED``/``STATIC``, each request goes to the device that
        can start it earliest under the estimated-backlog model; ties
        break deterministically toward the lowest device index.

        Raises for the online strategies -- their decisions exist only at
        run time (see :meth:`run`).
        """
        if self.routing in ONLINE_ROUTINGS:
            raise ValueError(
                f"{self.routing.value} routing decides at arrival events; "
                "call run() instead of route()"
            )
        ordered = sorted(tasks, key=lambda t: (t.spec.arrival_cycles, t.task_id))
        assignments: Dict[int, int] = {}
        rng = random.Random(self._seed)
        cursor = 0
        backlog_free_at = [0.0] * self.num_devices
        for task in ordered:
            arrival = task.spec.arrival_cycles
            if self.routing == RoutingPolicy.ROUND_ROBIN:
                device = cursor % self.num_devices
                cursor += 1
            elif self.routing == RoutingPolicy.RANDOM:
                device = rng.randrange(self.num_devices)
            else:  # LEAST_LOADED / STATIC: earliest predicted start wins.
                device = min(
                    range(self.num_devices),
                    key=lambda d: (max(backlog_free_at[d], arrival), d),
                )
            backlog_free_at[device] = (
                max(backlog_free_at[device], arrival)
                + task.context.estimated_cycles
            )
            assignments[task.task_id] = device
        return assignments

    # ------------------------------------------------------------------
    # Execution: the shared cluster event loop
    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[TaskRuntime]) -> ClusterResult:
        if not tasks:
            raise ValueError("need at least one task")
        ids = [task.task_id for task in tasks]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate task ids in workload")

        # The ledger only exists for policies that read tokens: attaching
        # one to HPF/SJF/FCFS would just accumulate dead entries (their
        # hooks never drain it).
        ledger: Optional[ClusterTokenLedger] = None
        if self.global_tokens and make_policy(self.policy_name).uses_tokens:
            ledger = ClusterTokenLedger()
        fabric: Optional[Interconnect] = None
        if self.routing is RoutingPolicy.PREEMPTIVE_MIGRATION:
            fabric = Interconnect(self.interconnect, self.num_devices)
        devices = [
            DeviceSim(
                self.simulation_config,
                make_policy(self.policy_name, ledger=ledger),
                device_id=index,
            )
            for index in range(self.num_devices)
        ]
        assignments: Dict[int, int] = {}
        migrations: List[MigrationRecord] = []
        #: Per-device in-flight checkpoint deliveries: (arrival cycle,
        #: estimated remaining cycles).  Routing counts them as backlog
        #: and a device with one pending is not an eligible thief.
        inflight: Dict[int, List[Tuple[float, float]]] = {
            index: [] for index in range(self.num_devices)
        }
        total = len(tasks)
        if self.routing in STATIC_ROUTINGS:
            # Static strategies know every placement up-front, so inject
            # all arrivals immediately (in workload order, like the
            # single-NPU batch run).  Each device then sees the exact
            # event sequence of simulating its partition in isolation --
            # in particular its scheduling-period clock stays anchored at
            # its first arrival even if the device drains between two
            # assigned arrivals.
            static_assignments = self.route(tasks)
            for task in tasks:
                target = static_assignments[task.task_id]
                assignments[task.task_id] = target
                devices[target].inject(task)
            pending: deque = deque()
        else:
            pending = deque(
                sorted(tasks, key=lambda t: (t.spec.arrival_cycles, t.task_id))
            )

        arrival_rank = int(_EventKind.ARRIVAL)
        while True:
            # Earliest device event by (time, kind); ties break to the
            # lowest device index.
            device_index: Optional[int] = None
            device_key: Optional[Tuple[float, int]] = None
            for index, device in enumerate(devices):
                key = device.next_event_key()
                if key is not None and (device_key is None or key < device_key):
                    device_index, device_key = index, key

            # Route the next arrival only once every device event that
            # logically precedes it has fired: earlier timestamps, plus
            # same-time completions and previously admitted same-time
            # arrivals (kind rank <= ARRIVAL).  Routing then sees exactly
            # the device state a real node agent would see at that
            # instant -- including the effects of simultaneous-burst
            # predecessors admitted moments before.
            arrival_due = bool(pending) and (
                device_key is None
                or device_key > (pending[0].spec.arrival_cycles, arrival_rank)
            )
            if arrival_due:
                task = pending.popleft()
                target = self._route_online(
                    devices, task.spec.arrival_cycles, inflight
                )
                assignments[task.task_id] = target
                devices[target].inject(task)
                continue

            if device_index is None or device_key is None:
                break  # no events and no arrivals left
            stepped = devices[device_index]
            now = stepped.step()

            # Steal opportunities only appear when a device goes idle
            # (COMPLETE) or stealable work lands on a busy device
            # (ARRIVAL); period ticks and reserved dispatches change
            # neither, so skip the O(devices^2) scan for them.
            if self.routing == RoutingPolicy.WORK_STEALING and (
                stepped.last_event_kind
                in (_EventKind.COMPLETE, _EventKind.ARRIVAL)
            ):
                migrations.extend(self._steal(devices, now, assignments))
            elif self.routing is RoutingPolicy.PREEMPTIVE_MIGRATION:
                # Migration opportunities additionally appear when a
                # preemption commits (PERIOD/DISPATCH wakes) and when a
                # checkpoint becomes durable (the reserved DISPATCH at
                # trap end), so scan after every event; the scan is
                # O(devices) idle peeks unless someone is actually idle.
                assert fabric is not None
                migrations.extend(
                    self._migrate(
                        devices, now, assignments, fabric, inflight, ledger
                    )
                )

            if sum(device.completed_count for device in devices) >= total:
                break

        device_results = tuple(device.result() for device in devices)
        transfers = fabric.transfers if fabric is not None else ()
        timeline = ClusterTimeline(
            {
                index: device.timeline
                for index, device in enumerate(devices)
                # A device whose every task migrated away still executed
                # cycles; its trace must survive for conservation checks.
                if device.num_tasks > 0 or len(device.timeline) > 0
            },
            transfers=transfers,
        )
        return ClusterResult(
            tasks=tuple(tasks),
            device_results=device_results,
            assignments=assignments,
            routing=self.routing.value,
            migrations=tuple(migrations),
            timeline=timeline,
            transfers=transfers,
        )

    # ------------------------------------------------------------------
    # Online decisions
    # ------------------------------------------------------------------
    @staticmethod
    def _inbound_backlog(
        inflight: Dict[int, List[Tuple[float, float]]], device: int, now: float
    ) -> float:
        """Estimated cycles of checkpoint deliveries still bound for
        ``device``; landed entries are pruned as a side effect."""
        entries = inflight[device]
        if not entries:
            return 0.0
        live = [(end, est) for end, est in entries if end > now]
        if len(live) != len(entries):
            inflight[device] = live
        return sum(est for _, est in live)

    @classmethod
    def _route_online(
        cls,
        devices: Sequence[DeviceSim],
        now: float,
        inflight: Dict[int, List[Tuple[float, float]]],
    ) -> int:
        """Least live predicted backlog; ties to the lowest device index.

        In-flight checkpoint migrations count toward their destination's
        backlog -- the node agent routed them, so it knows they are
        coming even though the device has not admitted them yet.
        """
        return min(
            range(len(devices)),
            key=lambda d: (
                devices[d].predicted_backlog(now)
                + cls._inbound_backlog(inflight, d, now),
                d,
            ),
        )

    @staticmethod
    def _steal(
        devices: Sequence[DeviceSim],
        now: float,
        assignments: Dict[int, int],
    ) -> List[MigrationRecord]:
        """Migrate queued work from backlogged devices to idle ones.

        Each idle device steals at most one task per event (the stolen
        task's arrival event re-triggers the loop, so repeated steals
        drain naturally).  Victim: largest live predicted backlog among
        devices holding stealable tasks; stolen task: largest estimated
        remaining work (ties to the lowest task id).
        """
        moves: List[MigrationRecord] = []
        for thief_index, thief in enumerate(devices):
            if not thief.is_idle(now):
                continue
            victim_index: Optional[int] = None
            victim_backlog = 0.0
            victim_tasks: List[TaskRuntime] = []
            for index, device in enumerate(devices):
                if index == thief_index:
                    continue
                candidates = device.stealable_tasks()
                if not candidates:
                    continue
                backlog = device.predicted_backlog(now)
                if victim_index is None or backlog > victim_backlog:
                    victim_index, victim_backlog = index, backlog
                    victim_tasks = candidates
            if victim_index is None:
                continue
            victim = devices[victim_index]
            stolen = max(
                victim_tasks,
                key=lambda t: (t.context.estimated_remaining_cycles, -t.task_id),
            )
            victim.remove_task(stolen.task_id, now)
            thief.inject(stolen, arrival=now)
            assignments[stolen.task_id] = thief_index
            moves.append(
                MigrationRecord(
                    task_id=stolen.task_id,
                    from_device=victim_index,
                    to_device=thief_index,
                    time_cycles=now,
                    kind="steal",
                    bytes_moved=0.0,
                    arrival_cycles=now,
                )
            )
        return moves

    def _migrate(
        self,
        devices: Sequence[DeviceSim],
        now: float,
        assignments: Dict[int, int],
        fabric: Interconnect,
        inflight: Dict[int, List[Tuple[float, float]]],
        ledger: Optional[ClusterTokenLedger],
    ) -> List[MigrationRecord]:
        """Pull the most starved migratable task to each idle device.

        Unlike work stealing -- whose moves are free and therefore
        restricted to never-dispatched tasks -- every PREEMPTIVE_MIGRATION
        move crosses the modeled interconnect and is charged real cycles:
        a queued task ships only its Fig-4 context row, a preempted task
        additionally ships its resident checkpoint (CONV/FC activations,
        RNN cell state).  Each idle device with no delivery already
        inbound pulls at most one task per event.

        Candidate choice is cluster-wide and fairness-driven: among every
        QUEUED or (durably checkpointed) PREEMPTED task whose
        contention-aware delivery time beats the wait it faces at home,
        take the highest priority, then most tokens (the most
        slowdown-compensated row), then longest estimated remaining work.
        This is what lets a preempted high-priority victim resume on a
        sibling NPU instead of waiting behind its preemptor.
        """
        moves: List[MigrationRecord] = []
        for thief_index, thief in enumerate(devices):
            if not thief.is_idle(now):
                continue
            # Prune landed deliveries, then gate on *presence* of live
            # ones -- a sum test would let a task whose estimate is
            # already exhausted (remaining floored to 0) slip through.
            self._inbound_backlog(inflight, thief_index, now)
            if inflight[thief_index]:
                continue  # a delivery is already on its way here
            best: Optional[TaskRuntime] = None
            best_key: Optional[Tuple[float, float, float, int]] = None
            best_source: Optional[int] = None
            best_payload = 0.0
            for index, device in enumerate(devices):
                if index == thief_index:
                    continue
                candidates = device.stealable_tasks()
                candidates += device.migratable_preempted_tasks(now)
                if not candidates:
                    continue
                backlog = device.predicted_backlog(now)
                for task in candidates:
                    context = task.context
                    payload = (
                        task.checkpoint_bytes_resident + CONTEXT_ROW_BYTES
                    )
                    delivery = fabric.estimate_arrival(
                        index, thief_index, payload, now
                    )
                    # Wait the task faces at home: everything live on its
                    # source device except its own remaining work.
                    home_wait = backlog - max(
                        0.0, context.estimated_remaining_cycles
                    )
                    if delivery - now >= home_wait:
                        continue  # the link is the slower queue; stay put
                    key = (
                        float(int(context.priority)),
                        context.tokens,
                        context.estimated_remaining_cycles,
                        -task.task_id,
                    )
                    if best_key is None or key > best_key:
                        best, best_key = task, key
                        best_source, best_payload = index, payload
            if best is None or best_source is None:
                continue
            source = devices[best_source]
            # "checkpoint" means saved state actually moved; a migrated
            # KILL victim restarts from scratch and ships only the row.
            ships_checkpoint = best.checkpoint_bytes_resident > 0
            task = source.remove_task(best.task_id, now)
            record = fabric.transfer(
                best_source, thief_index, best_payload, now,
                task_id=task.task_id,
            )
            # In transit the task keeps waiting (MIGRATING accrues like
            # READY): settle the whole flight now so the row lands with
            # its wait/token state carried over, then let the destination
            # flip it READY at the delivery arrival.
            task.context.state = TaskState.MIGRATING
            task.context.accrue_wait(record.end_cycles)
            if ledger is not None:
                # The migration is a settlement read point: the in-flight
                # task stays visible to the cluster-wide threshold.
                ledger.activate(task.task_id, task.context.tokens)
            task.migration_count += 1
            task.migrated_bytes_total += best_payload
            thief.inject(task, arrival=record.end_cycles)
            assignments[task.task_id] = thief_index
            inflight[thief_index].append(
                (record.end_cycles, task.context.estimated_remaining_cycles)
            )
            moves.append(
                MigrationRecord(
                    task_id=task.task_id,
                    from_device=best_source,
                    to_device=thief_index,
                    time_cycles=now,
                    kind="checkpoint" if ships_checkpoint else "steal",
                    bytes_moved=best_payload,
                    arrival_cycles=record.end_cycles,
                )
            )
        return moves
