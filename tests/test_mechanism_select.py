"""Dynamic preemption mechanism selection, Algorithm 3."""

import pytest

from repro.core.context import TaskContext
from repro.core.mechanism import (
    MechanismChoice,
    relative_degradations,
    select_mechanism,
)
from repro.core.tokens import Priority


def make_task(task_id, estimated, executed=0.0):
    row = TaskContext(
        task_id=task_id, priority=Priority.MEDIUM, estimated_cycles=estimated
    )
    row.executed_cycles = executed
    return row


class TestDegradations:
    def test_formula(self):
        current = make_task(1, estimated=1000.0, executed=900.0)
        candidate = make_task(2, estimated=400.0, executed=0.0)
        deg_current, deg_candidate = relative_degradations(current, candidate)
        assert deg_current == pytest.approx(400.0 / 1000.0)
        assert deg_candidate == pytest.approx(100.0 / 400.0)

    def test_zero_estimates_degrade_to_infinity(self):
        current = make_task(1, estimated=0.0)
        candidate = make_task(2, estimated=100.0)
        deg_current, _ = relative_degradations(current, candidate)
        assert deg_current == float("inf")


class TestSelectMechanism:
    def test_drain_when_current_nearly_done_and_candidate_long(self):
        # The paper's motivating case: finishing the near-complete task
        # first optimizes ANTT.
        current = make_task(1, estimated=1000.0, executed=990.0)
        candidate = make_task(2, estimated=2000.0, executed=0.0)
        assert select_mechanism(current, candidate) == MechanismChoice.DRAIN

    def test_checkpoint_when_candidate_short(self):
        current = make_task(1, estimated=10000.0, executed=100.0)
        candidate = make_task(2, estimated=200.0, executed=0.0)
        assert select_mechanism(current, candidate) == MechanismChoice.CHECKPOINT

    def test_checkpoint_on_tie(self):
        current = make_task(1, estimated=1000.0, executed=0.0)
        candidate = make_task(2, estimated=1000.0, executed=0.0)
        # Equal degradations: Algorithm 3's strict > favours CHECKPOINT.
        assert select_mechanism(current, candidate) == MechanismChoice.CHECKPOINT

    def test_fresh_long_current_vs_fresh_short_candidate(self):
        current = make_task(1, estimated=5000.0)
        candidate = make_task(2, estimated=100.0)
        # Degradation_current = 100/5000, Degradation_candidate = 5000/100.
        assert select_mechanism(current, candidate) == MechanismChoice.CHECKPOINT

    def test_symmetric_swap_flips_decision(self):
        near_done = make_task(1, estimated=1000.0, executed=950.0)
        long_fresh = make_task(2, estimated=3000.0)
        assert select_mechanism(near_done, long_fresh) == MechanismChoice.DRAIN
        assert select_mechanism(long_fresh, near_done) == MechanismChoice.CHECKPOINT
