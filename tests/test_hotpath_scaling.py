"""Per-event cost must not grow with tasks ever seen (complexity class).

The companion to the golden equivalence suite: equivalence pins the
*decisions*, these tests pin the *cost model*.  Synthetic traces (no
model compilation) drive one device at ~85% utilization, so the live
task population is bounded while the total request count grows 10x --
an O(live)-per-event loop shows flat per-event time, the old
O(ever-seen) loop showed a ~10x blowup (measured 91.5 -> 818.9 us/event
pre-optimization).
"""

import time

import pytest

from repro.npu.config import NPUConfig
from repro.sched.policies import make_policy
from repro.sched.simulator import DeviceSim, PreemptionMode, SimulationConfig
from repro.workloads.trace import synthetic_trace_runtimes

#: Generous bound: post-optimization the measured ratio is ~1.0; the old
#: loop measured ~9x.  Anything above this means per-event cost has
#: started scaling with trace length again.
MAX_PER_EVENT_GROWTH = 3.0


def _config() -> SimulationConfig:
    return SimulationConfig(
        npu=NPUConfig(),
        mode=PreemptionMode.DYNAMIC,
        mechanism="CHECKPOINT",
    )


def _us_per_event(num_tasks: int, seed: int = 9) -> float:
    best = float("inf")
    for attempt in range(2):  # best-of-2 absorbs scheduler hiccups
        runtimes = synthetic_trace_runtimes(num_tasks, seed=seed + attempt)
        sim = DeviceSim(_config(), make_policy("PREMA"))
        for runtime in runtimes:
            sim.inject(runtime)
        start = time.perf_counter()
        while sim.has_live_tasks and sim.next_event_time() is not None:
            sim.step()
        elapsed = time.perf_counter() - start
        assert all(runtime.is_done for runtime in runtimes)
        best = min(best, 1e6 * elapsed / sim.events_processed)
    return best


def test_per_event_cost_flat_from_500_to_5000_tasks():
    small = _us_per_event(500)
    large = _us_per_event(5000)
    assert large <= small * MAX_PER_EVENT_GROWTH, (
        f"per-event cost grew {large / small:.1f}x from 500 to 5000 tasks "
        f"({small:.1f} -> {large:.1f} us/event): the hot path is scaling "
        "with tasks ever seen again"
    )


@pytest.mark.parametrize("policy_name", ["FCFS", "HPF", "SJF", "PREMA"])
def test_trace_scale_run_completes_correctly(policy_name):
    """A 1000-task open-arrival trace completes with sane invariants."""
    runtimes = synthetic_trace_runtimes(1000, seed=4)
    sim = DeviceSim(_config(), make_policy(policy_name))
    for runtime in runtimes:
        sim.inject(runtime)
    while sim.has_live_tasks and sim.next_event_time() is not None:
        sim.step()
    assert sim.completed_count == 1000
    assert all(runtime.is_done for runtime in runtimes)
    sim.timeline.verify_no_overlap()
    result = sim.result()
    assert result is not None
    assert result.makespan_cycles >= max(
        runtime.spec.arrival_cycles for runtime in runtimes
    )
