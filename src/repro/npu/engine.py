"""Execution engine: ground-truth timing of a compiled model (Sec II-B/III).

The engine turns a :class:`~repro.isa.compiler.CompiledModel` into an
:class:`ExecutionProfile`: an ordered list of layer segments, each with its
true duration in cycles, its tile structure (for tile-boundary preemption),
and its checkpoint-size profile.  This is the "cycle-level performance
model" role of the paper's methodology; the closed forms it uses are
cross-validated against :mod:`repro.npu.cycle_sim`.

Timing model per GEMM layer:

- per-tile double-buffered cost ``max(compute, memory)`` with true partial
  tile extents (slightly cheaper than the Algorithm-1 prediction);
- one un-hidden cold-start memory phase + DRAM latency per layer;
- the vector-unit pipeline (fused ACTV, gate math) overlaps the array and
  only its final-tile tail is exposed;
- standalone vector layers (POOL/ACTV/SOFTMAX/EMBED) run on the vector
  unit/DMA alone.
"""

from __future__ import annotations

import bisect
import dataclasses
import math
from typing import List, Optional, Tuple

from repro.isa.compiler import CompiledLayer, CompiledModel
from repro.models.layers import LayerKind
from repro.npu.buffers import CheckpointProfile, layer_checkpoint_profile
from repro.npu.config import NPUConfig
from repro.npu.systolic import store_cycles, vector_op_cycles


@dataclasses.dataclass(frozen=True)
class LayerTiming:
    """Ground-truth timing of one layer."""

    name: str
    kind: LayerKind
    #: Total duration, cycles.
    cycles: float
    #: GEMM tiles in the layer (0 for vector-only layers).
    total_tiles: int
    #: Mean cycles per tile; preemption points snap to multiples of this.
    tile_cycles: float
    #: Checkpoint-size model (None for vector-only layers: in-place, no
    #: distinct output state to preserve, Sec IV-B).
    checkpoint: Optional[CheckpointProfile]
    #: MACs executed (Fig 10's x-axis).
    macs: int

    def tiles_done_at(self, offset_cycles: float) -> int:
        """Committed tiles after ``offset_cycles`` into the layer."""
        if offset_cycles <= 0 or self.total_tiles == 0:
            return 0
        if offset_cycles >= self.cycles:
            return self.total_tiles
        return min(self.total_tiles, int(offset_cycles / self.tile_cycles))

    def next_tile_boundary(self, offset_cycles: float) -> float:
        """Smallest tile-boundary offset >= ``offset_cycles``.

        GEMM_OP instructions are atomic (Sec IV-C): the preemption trap
        runs only after the in-flight tile commits.
        """
        if self.total_tiles == 0:
            return min(max(offset_cycles, 0.0), self.cycles)
        if offset_cycles >= self.cycles:
            return self.cycles
        boundary = math.ceil(offset_cycles / self.tile_cycles) * self.tile_cycles
        return min(boundary, self.cycles)

    def checkpoint_bytes_at(self, offset_cycles: float) -> float:
        """Checkpointable state size at an intra-layer offset."""
        if self.checkpoint is None:
            return 0.0
        return self.checkpoint.bytes_at(self.tiles_done_at(offset_cycles))


@dataclasses.dataclass(frozen=True)
class ExecutionProfile:
    """Ground-truth execution of a whole network on an idle NPU."""

    name: str
    batch: int
    layers: Tuple[LayerTiming, ...]
    #: Prefix sums of layer durations; entry i is the start cycle of layer i.
    layer_starts: Tuple[float, ...]
    total_cycles: float

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    def locate(self, offset_cycles: float) -> Tuple[int, float]:
        """Map a network-level offset to (layer index, intra-layer offset).

        Offsets at or past the end map to the final layer's end.
        """
        if offset_cycles <= 0:
            return 0, 0.0
        if offset_cycles >= self.total_cycles:
            last = self.num_layers - 1
            return last, self.layers[last].cycles
        index = bisect.bisect_right(self.layer_starts, offset_cycles) - 1
        return index, offset_cycles - self.layer_starts[index]

    def next_preemption_point(self, offset_cycles: float) -> float:
        """Network-level offset of the first safe preemption point >= offset."""
        index, intra = self.locate(offset_cycles)
        boundary = self.layers[index].next_tile_boundary(intra)
        return self.layer_starts[index] + boundary

    def checkpoint_bytes_at(self, offset_cycles: float) -> float:
        """Checkpointable state at a (boundary-aligned) network offset."""
        if offset_cycles >= self.total_cycles:
            return 0.0
        index, intra = self.locate(offset_cycles)
        return self.layers[index].checkpoint_bytes_at(intra)

    def max_checkpoint_bytes(self) -> float:
        """Worst-case checkpoint size across the network (Sec VI-G)."""
        best = 0.0
        for layer in self.layers:
            if layer.checkpoint is not None:
                best = max(best, layer.checkpoint.max_bytes)
        return best


# ----------------------------------------------------------------------
# Layer timing
# ----------------------------------------------------------------------
def _extent_counts(size: int, full: int) -> Tuple[Tuple[int, int], ...]:
    """((extent, tile count), ...) along one dimension: full tiles + remainder."""
    full_tiles, remainder = divmod(size, full)
    counts = []
    if full_tiles:
        counts.append((full, full_tiles))
    if remainder:
        counts.append((remainder, 1))
    return tuple(counts)


def gemm_cycles_by_category(shape, config: NPUConfig) -> Tuple[float, int, float]:
    """(steady-state cycles, tile count, cold-start fetch) for one GEMM.

    Identical tiles are counted, not iterated: a tiled GEMM has at most
    2x2x2 distinct tile extents (full/partial per dimension).  Equivalent
    to summing :func:`~repro.npu.systolic.tile_cycles` over
    ``TilePlan.tiles()`` -- tests pin the equivalence.
    """
    total = 0.0
    tiles = 0
    fill = config.array_height + 2 * config.array_width
    for sw, m_count in _extent_counts(shape.m, config.array_width):
        for sh, k_count in _extent_counts(shape.k, config.array_height):
            for acc, n_count in _extent_counts(shape.n, config.acc_depth):
                count = m_count * k_count * n_count
                # Fill/drain follow the *physical* array dims (data streams
                # through every row/column even under a partial tile).
                compute = acc + fill
                memory = (
                    (sh * sw + sh * acc)
                    * config.data_bytes
                    / config.bandwidth_bytes_per_cycle
                )
                total += max(compute, memory) * count
                tiles += count
    # The first tile in execution order is full along every dimension that
    # has a full tile (plan order starts at index 0,0,0).
    first_sw = min(shape.m, config.array_width)
    first_sh = min(shape.k, config.array_height)
    first_acc = min(shape.n, config.acc_depth)
    cold = (
        (first_sh * first_sw + first_sh * first_acc)
        * config.data_bytes
        / config.bandwidth_bytes_per_cycle
    )
    return total, tiles, cold


def time_gemm_layer(layer: CompiledLayer, config: NPUConfig) -> LayerTiming:
    """Ground-truth duration of a CONV/FC/RECR layer.

    No per-layer cold start: an intermediate layer's inputs are already
    resident in UBUF (the previous layer's outputs), and its first weight
    tile prefetches under the previous layer's tail compute.  A single
    DRAM-latency pipeline bubble is charged per layer.
    """
    total = 0.0
    tiles = 0
    # Grouped convolutions repeat one GEMM shape per group; count them once.
    shape_counts: dict = {}
    for shape in layer.gemm_shapes:
        shape_counts[shape] = shape_counts.get(shape, 0) + 1
    for shape, count in shape_counts.items():
        steady, shape_tiles, _cold = gemm_cycles_by_category(shape, config)
        total += steady * count
        tiles += shape_tiles * count
    total += config.memory_latency_cycles
    # Vector tail: fused elementwise work overlaps the array except for the
    # share belonging to the final output tile.
    if layer.vector_elems and layer.total_tiles:
        tail_elems = layer.vector_elems / layer.total_tiles
        total += vector_op_cycles(config, tail_elems)
    # Final output tile's store is exposed (nothing left to overlap it).
    if layer.out_elems:
        tail_out = layer.out_elems / max(1, layer.total_tiles)
        total += store_cycles(config, tail_out * config.data_bytes)
    checkpoint = layer_checkpoint_profile(
        config,
        out_elems_per_tile=layer.out_elems_per_tile,
        total_tiles=layer.total_tiles,
    )
    return LayerTiming(
        name=layer.name,
        kind=layer.kind,
        cycles=total,
        total_tiles=tiles,
        tile_cycles=total / tiles if tiles else total,
        checkpoint=checkpoint,
        macs=layer.macs,
    )


def time_vector_layer(layer: CompiledLayer, config: NPUConfig) -> LayerTiming:
    """Duration of an ACTV/POOL/SOFTMAX/EMBED/CONCAT layer."""
    total = 0.0
    if layer.kind == LayerKind.EMBED:
        total += store_cycles(config, layer.out_elems * config.data_bytes)
    if layer.vector_elems:
        total += vector_op_cycles(config, layer.vector_elems)
    # In-place layers preserve no distinct state (Sec IV-B).
    return LayerTiming(
        name=layer.name,
        kind=layer.kind,
        cycles=total,
        total_tiles=0,
        tile_cycles=total if total else 1.0,
        checkpoint=None,
        macs=0,
    )


def profile_model(model: CompiledModel, config: NPUConfig) -> ExecutionProfile:
    """Time every layer of a compiled model on an idle NPU."""
    timings: List[LayerTiming] = []
    for layer in model.layers:
        if layer.is_gemm_layer:
            timings.append(time_gemm_layer(layer, config))
        else:
            timings.append(time_vector_layer(layer, config))
    starts: List[float] = []
    clock = 0.0
    for timing in timings:
        starts.append(clock)
        clock += timing.cycles
    return ExecutionProfile(
        name=model.name,
        batch=model.batch,
        layers=tuple(timings),
        layer_starts=tuple(starts),
        total_cycles=clock,
    )
