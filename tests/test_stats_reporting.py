"""Statistics helpers and ASCII reporting."""

import pytest

from repro.analysis.reporting import format_mapping, format_series, format_table
from repro.analysis.stats import (
    geometric_mean,
    mean,
    pearson_correlation,
    percentile,
    relative_error,
)


class TestStats:
    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)

    def test_geometric_mean_rejects_bad(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -2.0])

    def test_correlation_perfect(self):
        assert pearson_correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_correlation_inverse(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_correlation_validation(self):
        with pytest.raises(ValueError):
            pearson_correlation([1, 2], [1, 2, 3])
        with pytest.raises(ValueError):
            pearson_correlation([1], [1])
        with pytest.raises(ValueError):
            pearson_correlation([1, 1, 1], [1, 2, 3])

    def test_percentile(self):
        values = list(range(1, 101))
        assert percentile(values, 95) == pytest.approx(95.05)

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 150)

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            mean([])

    def test_relative_error(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)


class TestFormatting:
    def test_table_contains_all_cells(self):
        table = format_table(
            ("a", "b"), [("x", 1.5), ("y", 2)], title="T"
        )
        for token in ("T", "a", "b", "x", "y", "1.500", "2"):
            assert token in table

    def test_table_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [("only-one",)])

    def test_table_empty_headers_raise(self):
        with pytest.raises(ValueError):
            format_table((), [])

    def test_series_alignment(self):
        series = format_series("s", [1, 2, 3], [10, 20, 30])
        assert "x:" in series and "y:" in series

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("s", [1, 2], [1])

    def test_mapping(self):
        text = format_mapping("M", {"key": 1.25, "other": "v"})
        assert "M" in text and "key" in text and "1.250" in text

    def test_large_and_small_floats_compact(self):
        table = format_table(("v",), [(1234567.0,), (0.00001,)])
        assert "1.23e+06" in table
        assert "1e-05" in table
