"""Event-driven multi-task NPU simulator (paper Secs III-V).

One NPU executes a multi-tasked workload under a (policy, preemption mode)
pair.  The scheduler wakes on the paper's three conditions -- task
dispatch, task completion, and scheduling-period expiry (Sec V-C) -- plus
the internal completion of a checkpoint trap.  Between wakes, the running
task advances analytically along its ground-truth execution profile.

The event machinery lives in :class:`DeviceSim`, a *stepwise* simulation
that accepts task injections at any point and processes one event per
:meth:`DeviceSim.step` call.  :class:`NPUSimulator` keeps the original
batch interface (``run()`` to completion) as a thin wrapper; the cluster
layer (:mod:`repro.sched.cluster`) interleaves many ``DeviceSim`` instances
under one global event loop and uses the live-state introspection hooks
(:meth:`DeviceSim.predicted_backlog`, :meth:`DeviceSim.stealable_tasks`,
:meth:`DeviceSim.remove_task`) for online dispatch and work stealing.

Per-event cost is O(log n) or amortized O(1) in the *live* task
population -- it does not grow with the number of tasks the device has
ever seen, which is what makes open-arrival traces (thousands of requests
per device, :mod:`repro.workloads.trace`) tractable:

- pending due arrivals sit in a min-heap (`is_idle` peeks instead of
  scanning the event queue);
- the predicted backlog iterates an admission-ordered live-task set, so
  completed tasks stop costing anything;
- waiting/token accounting settles lazily from ``last_update_cycles`` at
  its read points (period ticks, dispatch, migration) instead of walking
  the ready queue at every wake;
- ready-queue selection goes through the policies' incremental priority
  structures (:mod:`repro.sched.policies`) and the context table's
  incremental ready index.

Preemption modes:

``NP``
    Non-preemptive: the policy is consulted only when the NPU idles.
``STATIC``
    Preempt whenever the policy's candidate outranks the running task,
    always via the configured static mechanism (CHECKPOINT or KILL).
``DYNAMIC``
    PREMA's Algorithm 3: per preemption intent, choose CHECKPOINT or
    DRAIN from the predicted remaining times.
"""

from __future__ import annotations

import dataclasses
import enum
import heapq
import itertools
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.context import ContextTable, TaskState
from repro.core.mechanism import MechanismChoice, select_mechanism
from repro.core.scheduler import SchedulerConfig
from repro.npu.config import NPUConfig
from repro.npu.preemption import (
    CheckpointMechanism,
    KillMechanism,
    PreemptionMechanism,
)
from repro.obs.trace import NULL_TRACER
from repro.sched.policies import Policy
from repro.sched.task import TaskRuntime
from repro.sched.timeline import SegmentKind, Timeline


class PreemptionMode(enum.Enum):
    NP = "np"
    STATIC = "static"
    DYNAMIC = "dynamic"


@dataclasses.dataclass(frozen=True)
class SimulationConfig:
    """Everything one simulation run needs besides the workload itself."""

    npu: NPUConfig
    mode: PreemptionMode = PreemptionMode.NP
    #: Preemption mechanism: "CHECKPOINT" or "KILL".  STATIC mode always
    #: uses it; DYNAMIC mode lets Algorithm 3 pick between it and DRAIN
    #: (the paper's Fig 15 sensitivity swaps CHECKPOINT for KILL here).
    mechanism: str = "CHECKPOINT"
    scheduler: SchedulerConfig = dataclasses.field(default_factory=SchedulerConfig)

    def __post_init__(self) -> None:
        if self.mechanism.upper() not in ("CHECKPOINT", "KILL"):
            raise ValueError("mechanism must be CHECKPOINT or KILL")


class _EventKind(enum.IntEnum):
    # Deterministic tie-break order at equal timestamps: finish work before
    # admitting new tasks, and let period ticks observe a settled state.
    COMPLETE = 0
    ARRIVAL = 1
    PERIOD = 2
    DISPATCH = 3


class DeviceTaskState(enum.Enum):
    """Explicit per-device lifecycle of an injected task.

    The migration layer used to infer migratability from two sets
    ("queued" or nothing); with checkpoint migration in play the
    intermediate states matter -- in particular ``CHECKPOINTING``, whose
    tasks look READY in the context table while their checkpoint DMA is
    still in flight, and must not be shipped (the bytes are not durable
    yet) or double-stolen.
    """

    #: Injected, arrival event not yet processed.
    PENDING = "pending"
    #: Admitted and READY, never dispatched (no checkpoint state).
    QUEUED = "queued"
    #: Target of an in-flight post-preemption DISPATCH reservation.
    RESERVED = "reserved"
    #: Currently executing on the array.
    RUNNING = "running"
    #: Preempted; checkpoint trap/DMA still writing state to DRAM.
    CHECKPOINTING = "checkpointing"
    #: Preempted with a durable DRAM checkpoint -- safely migratable.
    PREEMPTED = "preempted"
    DONE = "done"


#: Lifecycle states a task may be migrated out of (see ``remove_task``).
MIGRATABLE_STATES = frozenset(
    {DeviceTaskState.QUEUED, DeviceTaskState.PREEMPTED}
)


@dataclasses.dataclass(frozen=True)
class SimulationResult:
    """Outcome of one run: completed task runtimes + the NPU timeline."""

    tasks: Tuple[TaskRuntime, ...]
    timeline: Timeline
    makespan_cycles: float
    preemption_count: int
    drain_decisions: int

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_tasks_by_id",
            {task.task_id: task for task in self.tasks},
        )

    def task_by_id(self, task_id: int) -> TaskRuntime:
        try:
            return self._tasks_by_id[task_id]  # type: ignore[attr-defined]
        except KeyError:
            raise KeyError(f"no task {task_id}") from None


class DeviceSim:
    """Stepwise, injectable single-NPU simulation (one cluster device).

    Holds the per-run mutable state the old monolithic ``run()`` kept in
    locals -- event heap, context table, runtimes, reservation bookkeeping
    -- and exposes it one event at a time.  Tasks may be injected before
    or during the run; the scheduling-period clock arms itself lazily at
    the first processed arrival, so an initially idle device costs nothing.
    """

    def __init__(
        self,
        config: SimulationConfig,
        policy: Policy,
        device_id: int = 0,
        tracer=None,
    ) -> None:
        self.config = config
        self.policy = policy
        self.device_id = device_id
        #: Observability sink (:mod:`repro.obs.trace`).  Defaults to the
        #: no-op singleton; every emission site guards on
        #: ``self.tracer.enabled`` before building args, so the default
        #: costs one attribute load per potential event and allocates
        #: nothing.
        self.tracer = NULL_TRACER if tracer is None else tracer
        policy.reset()
        self._checkpoint = CheckpointMechanism(config.npu)
        self._kill = KillMechanism(config.npu)
        self._table = ContextTable()
        self._runtimes: Dict[int, TaskRuntime] = {}
        self._events: List[Tuple[float, int, int, _EventKind, object]] = []
        self._counter = itertools.count()
        self.timeline = Timeline()
        self._running_id: Optional[int] = None
        #: Wall-clock cycle until which the NPU is busy checkpointing.
        self._npu_reserved_until = 0.0
        #: Task with an in-flight DISPATCH reservation (post-preemption).
        self._reserved_task_id: Optional[int] = None
        self._period_armed = False
        self._preemption_count = 0
        self._drain_decisions = 0
        self._completed = 0
        self._now = 0.0
        #: Kind of the most recently processed event (None before any).
        self.last_event_kind: Optional[_EventKind] = None
        #: Task completed by the most recent step() (None otherwise).
        #: The cluster layer's completion hook: admission budgeting and
        #: prediction feedback observe finished tasks through this
        #: without any per-event callback cost.
        self.last_completed: Optional[TaskRuntime] = None
        #: Total events processed (introspection / benchmarking).
        self.events_processed = 0
        #: Min-heap of unprocessed ARRIVAL timestamps.  Arrivals fire in
        #: time order, so the heap minimum is always the next one to
        #: fire; `is_idle` peeks it instead of scanning the event queue.
        self._pending_arrivals: List[float] = []
        #: Admitted, not-yet-completed tasks in admission order -- the
        #: population `predicted_backlog` sums over.  Completed tasks
        #: leave immediately, so backlog reads cost O(live), not O(ever).
        self._live_admitted: Dict[int, TaskRuntime] = {}
        #: Admitted, READY, never-dispatched tasks in admission order:
        #: the stealable population (modulo the reserved task).
        self._queued: Dict[int, TaskRuntime] = {}
        #: Admitted, READY, previously-dispatched tasks (they hold
        #: checkpoint state) in preemption order: the checkpoint-migration
        #: population, gated by ``_checkpoint_durable_at``.
        self._preempted: Dict[int, TaskRuntime] = {}
        #: Cycle at which a preempted task's checkpoint DMA finishes and
        #: its state becomes durable in DRAM.  Absent for tasks migrated
        #: *in* (their checkpoint arrived with them, already durable).
        self._checkpoint_durable_at: Dict[int, float] = {}
        #: Ids migrated out of this device: the only ids whose stale
        #: COMPLETE events may legitimately reference a missing runtime.
        self._migrated_out: set = set()
        #: Cluster notification hook: invoked (with this device) whenever
        #: the head of the event queue -- the ``next_event_key()`` value
        #: -- changes.  The cluster loop's global device-event heap
        #: refreshes its lazy-deletion entries through this instead of
        #: re-scanning every device per event; ``None`` (the default, and
        #: the single-NPU batch path) costs nothing.
        self.on_next_event_change: Optional[Callable[["DeviceSim"], None]] = None
        self._notified_key: Optional[Tuple[float, int]] = None
        #: Churn gate: False while the device is down, or (proactive
        #: mode) while a revocation/drain warning window is open.  The
        #: cluster layer's routing, stealing, and idle indexes all treat
        #: a non-accepting device as invisible; churn-free runs never
        #: clear it, so every historical code path is unchanged.
        self.accepts_work = True

    def _notify_event_change(self) -> None:
        """Fire :attr:`on_next_event_change` if the head key moved.

        Called once per external mutation (:meth:`inject`, :meth:`step`);
        intermediate pushes inside one event's handlers coalesce into at
        most one notification.
        """
        callback = self.on_next_event_change
        if callback is None:
            return
        key = self.next_event_key()
        if key != self._notified_key:
            self._notified_key = key
            callback(self)

    # ------------------------------------------------------------------
    # Event queue
    # ------------------------------------------------------------------
    def _push(self, time: float, kind: _EventKind, payload: object) -> None:
        heapq.heappush(
            self._events, (time, int(kind), next(self._counter), kind, payload)
        )

    def inject(self, task: TaskRuntime, arrival: Optional[float] = None) -> None:
        """Schedule ``task`` to arrive at ``arrival`` (default: its spec time).

        Callable before the run starts or at any point during it (cluster
        online dispatch and work-stealing migration inject mid-run).
        """
        when = task.spec.arrival_cycles if arrival is None else arrival
        if task.task_id in self._runtimes:
            raise ValueError(f"duplicate task id {task.task_id}")
        self._runtimes[task.task_id] = task
        heapq.heappush(self._pending_arrivals, when)
        self._push(when, _EventKind.ARRIVAL, task.task_id)
        self._notify_event_change()

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the next pending event (None when dormant)."""
        return self._events[0][0] if self._events else None

    def next_event_key(self) -> Optional[Tuple[float, int]]:
        """(timestamp, kind-rank) of the next pending event.

        The kind rank follows :class:`_EventKind`'s tie-break order, so a
        cluster loop can decide whether a device event logically precedes
        a same-time cluster-level arrival.
        """
        return (self._events[0][0], self._events[0][1]) if self._events else None

    def step(self) -> float:
        """Process exactly one pending event; returns its timestamp."""
        if not self._events:
            raise RuntimeError("no pending events")
        now, _, _, kind, payload = heapq.heappop(self._events)
        self._now = now
        self.last_event_kind = kind
        self.last_completed = None
        self.events_processed += 1
        if kind == _EventKind.ARRIVAL:
            self._on_arrival(now, payload)  # type: ignore[arg-type]
        elif kind == _EventKind.COMPLETE:
            self._on_complete(now, payload)  # type: ignore[arg-type]
        elif kind == _EventKind.PERIOD:
            self._on_period(now)
        elif kind == _EventKind.DISPATCH:
            self._on_dispatch(now, payload)  # type: ignore[arg-type]
        self._notify_event_change()
        return now

    # ------------------------------------------------------------------
    # Introspection (cluster-level routing and stealing read these)
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def completed_count(self) -> int:
        return self._completed

    @property
    def num_tasks(self) -> int:
        return len(self._runtimes)

    @property
    def has_live_tasks(self) -> bool:
        return self._completed < len(self._runtimes)

    @property
    def maybe_idle(self) -> bool:
        """The time-independent clauses of :meth:`is_idle` (O(1) fields).

        ``is_idle(now)`` implies ``maybe_idle`` for every ``now`` a
        cluster loop can observe: the two time-dependent clauses it adds
        (the NPU-reservation window and a due-but-unprocessed arrival)
        only ever *remove* idleness.  The cluster's idle-candidate set is
        therefore keyed on this property and re-checks ``is_idle(now)``
        on consumption.  A device that stopped accepting work (churn) is
        never an idle *candidate* -- it must not attract steals.
        """
        return (
            self.accepts_work
            and self._running_id is None
            and self._reserved_task_id is None
            and not self._table.has_ready
        )

    @property
    def has_queued(self) -> bool:
        """Any admitted, READY, never-dispatched task resident (O(1)).

        A superset test for :meth:`stealable_tasks` being non-empty (the
        reserved dispatch target still filters at read time).
        """
        return bool(self._queued)

    @property
    def has_preempted(self) -> bool:
        """Any preempted task resident (O(1)); durability still gates
        :meth:`migratable_preempted_tasks` at read time."""
        return bool(self._preempted)

    @property
    def queue_depth(self) -> int:
        """Resident not-running work: queued + preempted tasks (O(1)).

        The streaming-metrics gauge (:mod:`repro.obs.metrics`); purely
        observational.
        """
        return len(self._queued) + len(self._preempted)

    @property
    def is_busy(self) -> bool:
        """A task currently occupies the array (O(1), observational)."""
        return self._running_id is not None

    def is_idle(self, now: float) -> bool:
        """No running task, empty ready queue, no reservation in flight,
        and no admitted-but-unprocessed arrival already due.

        The last clause keeps work stealing fair: a thief that just
        received a stolen task (its ARRIVAL event still pending at
        ``now``) must not be counted idle again in the same instant and
        grab a second task from under another idle device.  All clauses
        are O(1) peeks.  A non-accepting device (churn) is never idle
        for the cluster's purposes -- it must not attract work.
        """
        return (
            self.accepts_work
            and self._running_id is None
            and self._reserved_task_id is None
            and now >= self._npu_reserved_until
            and not self._table.has_ready
            and not (
                self._pending_arrivals and self._pending_arrivals[0] <= now
            )
        )

    def predicted_backlog(
        self,
        now: float,
        min_priority: Optional[int] = None,
        sjf_within_cycles: Optional[float] = None,
    ) -> float:
        """Scheduler-visible predicted cycles left on this device.

        Sums ``Time_estimated`` minus accounted progress over every live
        task already *admitted* (tasks whose arrival event has not fired
        yet are invisible, as they would be to a real node agent).  The
        running task's progress is refreshed the same way the preemption
        check refreshes it, so routing and preemption see one state.
        Iterates the admission-ordered live set: completed tasks cost
        nothing, so the read is O(live tasks).

        ``min_priority`` restricts the sum to tasks of at least that
        priority -- the *class-aware* backlog the admission controller
        predicts with.  Under the preemptive priority-driven policies an
        arriving high-priority request neither waits behind queued
        low-priority work nor behind a running low-priority task (it
        preempts it at the next boundary), so counting either would
        over-reject exactly the class admission exists to protect.
        ``sjf_within_cycles`` refines the same-priority term: PREMA's
        Algorithm 2 serves the *shortest* candidate first among equal
        priorities, so an arrival only waits behind same-priority rows
        whose remaining estimate is at most its own.  None (the default,
        and the only form routing ever uses) keeps the historical total.
        """
        if min_priority is None and sjf_within_cycles is None:
            return self._backlog_sum(lambda task: task.progress_at(now))
        total = 0.0
        for task in self._live_admitted.values():
            context = task.context
            if min_priority is not None:
                level = int(context.priority)
                if level < min_priority:
                    continue
                remaining = max(
                    0.0, context.estimated_cycles - context.executed_cycles
                )
                if (
                    level == min_priority
                    and sjf_within_cycles is not None
                    and task.dispatch_time is None
                    and remaining > sjf_within_cycles
                ):
                    continue
            if task.dispatch_time is not None:
                executed = task.progress_at(now)
            else:
                executed = context.executed_cycles
            total += max(0.0, context.estimated_cycles - executed)
        return total

    def _backlog_sum(self, running_executed) -> float:
        """The unfiltered admission-order backlog summation.

        The single loop behind both :meth:`predicted_backlog`'s
        unfiltered read and :meth:`backlog_lower_bound` -- the backlog
        index's bit-for-bit guarantee requires those two to perform the
        *identical* IEEE-754 summation with only the running task's
        executed-cycles source swapped, so they must not drift apart as
        separate copies.  ``running_executed(task)`` supplies that
        source for dispatched tasks.
        """
        total = 0.0
        for task in self._live_admitted.values():
            context = task.context
            if task.dispatch_time is not None:
                executed = running_executed(task)
            else:
                executed = context.executed_cycles
            total += max(0.0, context.estimated_cycles - executed)
        return total

    def backlog_lower_bound(self) -> float:
        """A floor under :meth:`predicted_backlog` valid until the next
        device mutation -- the key of the cluster's backlog index.

        ``predicted_backlog(now)`` differs from the settled state only in
        the running task's term, which shrinks as ``now`` advances but
        never below ``max(0, Time_estimated - total profile cycles)``
        (progress caps at the profile end, and the COMPLETE event that
        would remove the task fires before any later routing decision).
        Substituting that floor for the running task's term -- in the
        *same* admission-order IEEE-754 summation, where replacing one
        non-negative term by a smaller one can only lower every partial
        sum -- yields a bound that provably never exceeds the exact
        backlog at any reachable ``now``, so a best-first search over
        these bounds reproduces the linear scan's argmin bit-for-bit.
        In-flight checkpoint deliveries (also non-negative add-ons) are
        deliberately excluded for the same reason.
        """
        return self._backlog_sum(lambda task: task.profile.total_cycles)

    def task_lifecycle(self, task_id: int, now: float) -> DeviceTaskState:
        """Explicit lifecycle state of an injected task at cycle ``now``.

        This is the migration layer's single source of truth: a task is
        exactly one of PENDING / QUEUED / RESERVED / RUNNING /
        CHECKPOINTING / PREEMPTED / DONE, and only QUEUED and PREEMPTED
        tasks may leave the device.
        """
        task = self._runtimes.get(task_id)
        if task is None:
            raise KeyError(f"no task {task_id}")
        if task.is_done:
            return DeviceTaskState.DONE
        if task_id == self._running_id:
            return DeviceTaskState.RUNNING
        if task_id == self._reserved_task_id:
            return DeviceTaskState.RESERVED
        if task_id in self._queued:
            return DeviceTaskState.QUEUED
        if task_id in self._preempted:
            if now < self._checkpoint_durable_at.get(task_id, 0.0):
                return DeviceTaskState.CHECKPOINTING
            return DeviceTaskState.PREEMPTED
        return DeviceTaskState.PENDING

    @property
    def running_task(self) -> Optional[TaskRuntime]:
        """The currently executing runtime (None when the array is free)."""
        if self._running_id is None:
            return None
        return self._runtimes.get(self._running_id)

    def stealable_tasks(self) -> List[TaskRuntime]:
        """Still-queued tasks safe to migrate: admitted, READY, never
        dispatched, and not the target of a reserved post-preemption
        dispatch.  Never-dispatched tasks carry no checkpoint state, so a
        migration moves only the context row.  O(queued): the set is
        maintained at admit/dispatch/remove."""
        reserved = self._reserved_task_id
        return [
            task
            for task in self._queued.values()
            if task.task_id != reserved
        ]

    def migratable_preempted_tasks(self, now: float) -> List[TaskRuntime]:
        """Preempted tasks whose checkpoint is durable in DRAM at ``now``.

        Excludes CHECKPOINTING tasks (their state is still streaming to
        DRAM -- shipping it would race the trap routine) and the reserved
        post-preemption dispatch target.  O(preempted): the set is
        maintained at preemption/dispatch/remove.
        """
        reserved = self._reserved_task_id
        return [
            task
            for task_id, task in self._preempted.items()
            if task_id != reserved
            and now >= self._checkpoint_durable_at.get(task_id, 0.0)
        ]

    def remove_task(self, task_id: int, now: float) -> TaskRuntime:
        """Migrate a QUEUED or PREEMPTED task out of this device.

        Waiting time is settled up to ``now`` first (the migration read
        point of the lazy wait accounting), so tokens and wait earned on
        this device travel with the context row to the new device;
        preempted tasks additionally carry their retained progress,
        pending restore cost, and resident checkpoint bytes on the
        runtime.  Every other lifecycle state refuses explicitly --
        RUNNING and RESERVED tasks own (or are promised) the array, and a
        CHECKPOINTING task's state is not yet durable, so moving any of
        them would double-book execution state across devices.
        """
        state = self.task_lifecycle(task_id, now)
        if state not in MIGRATABLE_STATES:
            raise ValueError(
                f"task {task_id} is {state.value}; only queued or "
                "(durably checkpointed) preempted tasks can migrate"
            )
        task = self._runtimes[task_id]
        task.context.accrue_wait(now)
        self._table.remove(task_id)
        del self._runtimes[task_id]
        self._queued.pop(task_id, None)
        self._preempted.pop(task_id, None)
        self._checkpoint_durable_at.pop(task_id, None)
        del self._live_admitted[task_id]
        self._migrated_out.add(task_id)
        self.policy.on_remove(task.context, now)
        return task

    def fail(self, now: float) -> List[TaskRuntime]:
        """Fail-stop this device at cycle ``now``.

        Everything resident dies with the device's DRAM: the running
        task's progress, in-flight and durable checkpoints, pending
        restores.  Every non-DONE task -- running, checkpointing,
        preempted, queued, reserved, or still pending arrival -- is
        reset to offset zero (:meth:`TaskRuntime.record_failure`) and
        returned as an orphan for the cluster to re-dispatch elsewhere.
        The event queue is wiped (a dead device fires no events) and the
        device stops accepting work; completed tasks stay resident so
        :meth:`result` still reports them.
        """
        running = (
            self._runtimes.get(self._running_id)
            if self._running_id is not None
            else None
        )
        if running is not None and running.dispatch_time is not None:
            # Pin the timeline through the failure instant before the
            # runtime forgets its dispatch.
            self._record_run_segments(running, now)
        orphans: List[TaskRuntime] = []
        for task_id in list(self._runtimes):
            task = self._runtimes[task_id]
            if task.is_done:
                continue
            task.record_failure(now)
            del self._runtimes[task_id]
            if task_id in self._live_admitted:
                self._table.remove(task_id)
                del self._live_admitted[task_id]
                self.policy.on_remove(task.context, now)
            self._queued.pop(task_id, None)
            self._preempted.pop(task_id, None)
            self._checkpoint_durable_at.pop(task_id, None)
            self._migrated_out.add(task_id)
            orphans.append(task)
        self._events.clear()
        self._pending_arrivals.clear()
        self._running_id = None
        self._reserved_task_id = None
        self._npu_reserved_until = now
        self._period_armed = False
        self.accepts_work = False
        self._notify_event_change()
        if self.tracer.enabled:
            self.tracer.instant(
                "device_fail",
                f"fail dev{self.device_id}",
                now,
                device=self.device_id,
                args={"orphans": len(orphans)},
            )
        return orphans

    def preview_checkpoint(self, now: float):
        """Cost of checkpointing the running task, without committing.

        Returns ``(free_at, checkpoint_bytes)`` -- when the trap DMA
        would finish and how many bytes would need shipping -- or
        ``None`` when nothing is running.  The evacuation planner uses
        this to decide whether a checkpoint-then-migrate fits inside a
        revocation warning window.
        """
        if self._running_id is None:
            return None
        running = self._runtimes[self._running_id]
        progress = running.progress_at(now)
        outcome = self._checkpoint.preempt(running.profile, progress)
        boundary_wall = running.wall_time_at_offset(outcome.boundary_offset)
        free_at = boundary_wall + outcome.preemption_latency
        return free_at, outcome.checkpoint_bytes

    def force_checkpoint(self, now: float) -> Tuple[float, float]:
        """Checkpoint the running task with no reserved successor.

        The churn evacuation path: a WARNED device checkpoints its
        running task so the durable bytes can migrate out before the
        revocation deadline.  Identical bookkeeping to a policy-driven
        CHECKPOINT preemption except that no candidate is promised the
        array -- the DISPATCH event pushed at ``free_at`` carries no
        payload and simply re-runs the scheduler once the trap DMA
        lands.  Returns ``(free_at, checkpoint_bytes)``.
        """
        if self._running_id is None:
            raise RuntimeError("no running task to checkpoint")
        running = self._runtimes[self._running_id]
        progress = running.progress_at(now)
        outcome = self._checkpoint.preempt(running.profile, progress)
        boundary_wall = running.wall_time_at_offset(outcome.boundary_offset)
        free_at = boundary_wall + outcome.preemption_latency
        self._record_run_segments(running, boundary_wall)
        if outcome.preemption_latency > 0:
            self.timeline.record(
                running.task_id, SegmentKind.CHECKPOINT, boundary_wall, free_at
            )
        if self.tracer.enabled:
            self.tracer.instant(
                "preemption",
                f"evacuate t{running.task_id}",
                boundary_wall,
                device=self.device_id,
                args={
                    "victim": running.task_id,
                    "mechanism": "forced-checkpoint",
                    "checkpoint_bytes": outcome.checkpoint_bytes,
                },
            )
            self.tracer.span(
                "checkpoint",
                f"checkpoint t{running.task_id}",
                boundary_wall,
                free_at,
                device=self.device_id,
                args={"task": running.task_id},
            )
        running.record_preemption(
            now=boundary_wall,
            retained_offset=outcome.retained_offset,
            restore_latency=outcome.restore_latency,
            checkpoint_bytes=outcome.checkpoint_bytes,
            killed=False,
        )
        self.policy.on_requeue(running.context)
        self._preempted[running.task_id] = running
        self._checkpoint_durable_at[running.task_id] = free_at
        self._npu_reserved_until = free_at
        self._preemption_count += 1
        self._running_id = None
        self._push(free_at, _EventKind.DISPATCH, None)
        self._notify_event_change()
        return free_at, outcome.checkpoint_bytes

    def result(self) -> Optional[SimulationResult]:
        """Build the device's :class:`SimulationResult` (None if no tasks)."""
        if not self._runtimes:
            return None
        makespan = max(
            task.completion_time
            for task in self._runtimes.values()
            if task.completion_time is not None
        )
        return SimulationResult(
            tasks=tuple(self._runtimes.values()),
            timeline=self.timeline,
            makespan_cycles=makespan,
            preemption_count=self._preemption_count,
            drain_decisions=self._drain_decisions,
        )

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _on_arrival(self, now: float, task_id: int) -> None:
        heapq.heappop(self._pending_arrivals)
        task = self._runtimes[task_id]
        if task.context.state is TaskState.MIGRATING:
            # Mid-flight re-admission: the checkpoint just landed over the
            # interconnect.  Transit wait was settled by the sender up to
            # this arrival, so the row re-enters READY with its accrued
            # wait/tokens intact and its checkpoint already durable here.
            task.context.state = TaskState.READY
        task.context.last_update_cycles = now
        self._table.add(task.context)
        self._live_admitted[task_id] = task
        if task.first_dispatch_time is None:
            self._queued[task_id] = task
        else:
            # Previously dispatched elsewhere: it carries checkpoint
            # state, so it joins the preempted (not the stealable) set.
            self._preempted[task_id] = task
        self.policy.on_admit(task.context, now)
        if not self._period_armed:
            # Lazy period clock: first tick one period after the first
            # admitted arrival (matches the monolithic run()'s anchor).
            self._period_armed = True
            self._push(
                now + self.config.scheduler.period_cycles,
                _EventKind.PERIOD,
                None,
            )
        self._wake(now)

    def _on_complete(self, now: float, payload: object) -> None:
        task_id, epoch = payload  # type: ignore[misc]
        task = self._runtimes.get(task_id)
        if task is None:
            # Only a migrated-away task may leave a dangling COMPLETE
            # behind; anything else is a bookkeeping bug worth crashing on.
            if task_id not in self._migrated_out:
                raise KeyError(f"completion for unknown task {task_id}")
            return
        if task.epoch != epoch or task.context.state != TaskState.RUNNING:
            return  # stale completion from a preempted dispatch
        self._record_run_segments(task, now)
        task.complete(now)
        if self.tracer.enabled:
            self.tracer.instant(
                "complete",
                f"complete t{task_id}",
                now,
                device=self.device_id,
                args={"task": task_id, "turnaround": task.turnaround_cycles},
            )
        self.last_completed = task
        self._completed += 1
        self._live_admitted.pop(task_id, None)
        if task_id == self._running_id:
            self._running_id = None
        self._wake(now)

    def _on_period(self, now: float) -> None:
        self._period_armed = False
        if self._completed < len(self._runtimes):
            self._period_armed = True
            self._push(
                now + self.config.scheduler.period_cycles,
                _EventKind.PERIOD,
                None,
            )
        # Lazy settlement: period ticks are the one wake that *reads*
        # waiting time (token grants), so they settle the ready queue.
        self._accrue_ready(now)
        if self.policy.uses_tokens:
            self.policy.on_period(self._table)
        self._wake(now)

    def _on_dispatch(self, now: float, task_id: Optional[int]) -> None:
        self._reserved_task_id = None
        if task_id is None:
            # Forced-checkpoint wake (churn evacuation): the trap DMA just
            # finished with no reserved successor -- run the scheduler.
            self._wake(now)
            return
        # Reserved candidates are excluded from stealable_tasks(), so the
        # dispatch target is always still resident; a KeyError here means
        # that invariant was violated.
        task = self._runtimes[task_id]
        if task.is_done or task.context.state == TaskState.RUNNING:
            return
        self._running_id = self._dispatch(now, task)

    # ------------------------------------------------------------------
    # Scheduler core
    # ------------------------------------------------------------------
    def _accrue_ready(self, now: float) -> None:
        """Settle waiting time for every ready row up to ``now``.

        Called at read points only (period ticks); between reads, idle
        waiters cost nothing -- ``accrue_wait`` integrates the whole span
        since each row's ``last_update_cycles`` when it finally runs.
        """
        for row in self._table.ready():
            row.accrue_wait(now)

    def _dispatch(self, now: float, task: TaskRuntime) -> int:
        completion = task.dispatch(now)
        self._queued.pop(task.task_id, None)
        self._preempted.pop(task.task_id, None)
        self._checkpoint_durable_at.pop(task.task_id, None)
        self.policy.on_dispatch(task.context)
        self._push(completion, _EventKind.COMPLETE, (task.task_id, task.epoch))
        if self.tracer.enabled:
            self.tracer.instant(
                "dispatch",
                f"dispatch t{task.task_id}",
                now,
                device=self.device_id,
                args={"task": task.task_id, "projected_end": completion},
            )
        return task.task_id

    def _record_run_segments(self, task: TaskRuntime, end: float) -> None:
        """Record the restore + run spans of the dispatch ending at ``end``."""
        start = task.dispatch_time
        if start is None:
            return
        restore_end = start + task.dispatch_restore
        self.timeline.record(task.task_id, SegmentKind.RESTORE, start, restore_end)
        self.timeline.record(task.task_id, SegmentKind.RUN, restore_end, end)
        if self.tracer.enabled:
            # Zero-length restores become instants inside span(), mirroring
            # the Timeline's instants side list.
            self.tracer.span(
                "restore",
                f"restore t{task.task_id}",
                start,
                restore_end,
                device=self.device_id,
                args={"task": task.task_id},
            )
            self.tracer.span(
                "run",
                f"run t{task.task_id}",
                restore_end,
                end,
                device=self.device_id,
                args={"task": task.task_id},
            )

    def _wake(self, now: float) -> None:
        """Run the scheduler at a wake condition."""
        if self._running_id is None:
            if now < self._npu_reserved_until or self._reserved_task_id is not None:
                # A checkpoint trap is in flight, or the NPU is promised
                # to a preemption candidate whose DISPATCH event has not
                # fired yet (an arrival tying exactly with the trap's end
                # must not double-book the array -- it can preempt the
                # reserved task at the next wake instead).
                return
            candidate_ctx = self.policy.select_ready(self._table)
            if candidate_ctx is None:
                return
            self._running_id = self._dispatch(
                now, self._runtimes[candidate_ctx.task_id]
            )
            return

        if self.config.mode == PreemptionMode.NP:
            return

        candidate_ctx = self.policy.select_ready(self._table)
        if candidate_ctx is None:
            return
        running = self._runtimes[self._running_id]
        # Token-driven policies re-rank on every period tick as waiting
        # tasks earn tokens; the scheduling-period time-quota (Table II)
        # guarantees the running task at least one quota of service so
        # token drift cannot ping-pong the NPU between two tasks.
        if self.policy.uses_tokens and running.dispatch_time is not None:
            if now - running.dispatch_time < self.config.scheduler.period_cycles:
                return
        # Refresh the running task's accounted progress for ranking.
        running.context.executed_cycles = running.progress_at(now)
        if not self.policy.outranks_running(
            candidate_ctx, running.context, self._table
        ):
            return

        mechanism: PreemptionMechanism = (
            self._kill
            if self.config.mechanism.upper() == "KILL"
            else self._checkpoint
        )
        if self.config.mode == PreemptionMode.DYNAMIC:
            choice = select_mechanism(running.context, candidate_ctx)
            if choice == MechanismChoice.DRAIN:
                self._drain_decisions += 1
                return

        # Apply the mechanism at the running task's current progress.
        progress = running.progress_at(now)
        outcome = mechanism.preempt(running.profile, progress)
        # Wall-clock when the in-flight tile commits (boundary), then trap.
        # A request arriving during the restore phase waits for it.
        boundary_wall = running.wall_time_at_offset(outcome.boundary_offset)
        free_at = boundary_wall + outcome.preemption_latency
        self._record_run_segments(running, boundary_wall)
        if outcome.preemption_latency > 0:
            self.timeline.record(
                running.task_id, SegmentKind.CHECKPOINT, boundary_wall, free_at
            )
        if self.tracer.enabled:
            self.tracer.instant(
                "preemption",
                f"preempt t{running.task_id}",
                boundary_wall,
                device=self.device_id,
                args={
                    "victim": running.task_id,
                    "candidate": candidate_ctx.task_id,
                    "mechanism": (
                        "kill" if isinstance(mechanism, KillMechanism)
                        else "checkpoint"
                    ),
                    "checkpoint_bytes": outcome.checkpoint_bytes,
                },
            )
            self.tracer.span(
                "checkpoint",
                f"checkpoint t{running.task_id}",
                boundary_wall,
                free_at,
                device=self.device_id,
                args={"task": running.task_id},
            )
        running.record_preemption(
            now=boundary_wall,
            retained_offset=outcome.retained_offset,
            restore_latency=outcome.restore_latency,
            checkpoint_bytes=outcome.checkpoint_bytes,
            killed=isinstance(mechanism, KillMechanism),
        )
        self.policy.on_requeue(running.context)
        # The victim is READY for accounting (it waits from the boundary
        # commit on) but its checkpoint is only durable once the trap DMA
        # finishes at ``free_at`` -- until then it is CHECKPOINTING in the
        # device lifecycle and must not be migrated.
        self._preempted[running.task_id] = running
        self._checkpoint_durable_at[running.task_id] = free_at
        self._npu_reserved_until = free_at
        self._preemption_count += 1
        self._reserved_task_id = candidate_ctx.task_id
        self._push(free_at, _EventKind.DISPATCH, candidate_ctx.task_id)
        self._running_id = None


class NPUSimulator:
    """Simulate one workload on one NPU under one scheduling configuration.

    Batch interface over :class:`DeviceSim`: all arrivals are injected
    up-front and the event loop runs to completion.
    """

    def __init__(self, config: SimulationConfig, policy: Policy) -> None:
        self.config = config
        self.policy = policy

    def run(self, tasks: Sequence[TaskRuntime]) -> SimulationResult:
        """Execute the workload to completion and return the result."""
        if not tasks:
            raise ValueError("need at least one task")
        sim = DeviceSim(self.config, self.policy)
        for task in tasks:
            sim.inject(task)
        while sim.has_live_tasks and sim.next_event_time() is not None:
            sim.step()
        result = sim.result()
        assert result is not None
        return result
