"""Token accounting and the dynamic candidate threshold (Sec V-C)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tokens import (
    PRIORITY_TOKENS,
    Priority,
    candidate_threshold,
    initial_tokens,
    select_candidates,
    token_increment,
)


class TestInitialTokens:
    def test_table_two_values(self):
        assert initial_tokens(Priority.LOW) == 1
        assert initial_tokens(Priority.MEDIUM) == 3
        assert initial_tokens(Priority.HIGH) == 9

    def test_priority_tokens_complete(self):
        assert set(PRIORITY_TOKENS) == set(Priority)


class TestTokenIncrement:
    def test_proportional_to_priority(self):
        low = token_increment(Priority.LOW, 100.0, 50.0)
        high = token_increment(Priority.HIGH, 100.0, 50.0)
        assert high == pytest.approx(9 * low)

    def test_short_tasks_earn_faster(self):
        short = token_increment(Priority.LOW, 100.0, 10.0)
        long = token_increment(Priority.LOW, 100.0, 1000.0)
        assert short > long

    def test_zero_wait_zero_tokens(self):
        assert token_increment(Priority.HIGH, 0.0, 100.0) == 0.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            token_increment(Priority.LOW, -1.0, 100.0)
        with pytest.raises(ValueError):
            token_increment(Priority.LOW, 1.0, 0.0)


class TestCandidateThreshold:
    def test_paper_example_max_eight_gives_three(self):
        # Sec V-C: "when the largest token value ... is 8, the threshold is
        # set as 3 not 9".
        assert candidate_threshold(8.0) == 3.0

    def test_max_holder_always_qualifies(self):
        # Strictly-below rule: even at exactly 9, threshold drops to 3 so
        # the max-token task passes the strict > comparison.
        assert candidate_threshold(9.0) == 3.0
        assert candidate_threshold(3.0) == 1.0
        assert candidate_threshold(1.0) == 0.0

    def test_above_nine(self):
        assert candidate_threshold(47.0) == 9.0

    def test_below_one(self):
        assert candidate_threshold(0.5) == 0.0

    @given(max_tokens=st.floats(min_value=0.01, max_value=1000.0))
    @settings(max_examples=80, deadline=None)
    def test_threshold_strictly_below_max(self, max_tokens):
        assert candidate_threshold(max_tokens) < max_tokens


class TestSelectCandidates:
    def test_empty_queue(self):
        assert select_candidates({}) == ()

    def test_max_task_always_included(self):
        candidates = select_candidates({1: 8.0, 2: 2.0, 3: 1.0})
        assert 1 in candidates

    def test_paper_example_selection(self):
        # max=8 -> threshold 3 -> tasks with tokens > 3 qualify.
        candidates = select_candidates({1: 8.0, 2: 4.0, 3: 3.0, 4: 1.0})
        assert set(candidates) == {1, 2}

    def test_single_task_queue(self):
        assert select_candidates({7: 1.0}) == (7,)

    @given(
        tokens=st.dictionaries(
            st.integers(min_value=0, max_value=20),
            st.floats(min_value=0.1, max_value=100.0),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_never_empty_for_nonempty_queue(self, tokens):
        assert select_candidates(tokens)
