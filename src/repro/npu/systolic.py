"""Weight-stationary systolic-array GEMM timing (paper Fig 3b, Algorithm 1).

Two timing views live here:

``predicted_*``
    The coarse closed forms the *predictor* (Algorithm 1) uses: every m/k
    tile costs a full inner-tile time; only the partial n tile is shortened.

``engine_*``
    The slightly finer forms the *engine* (ground truth) uses: pipeline
    fill/drain shrink with the actual tile extents, so small layers run a
    bit faster than the predictor believes.  The gap is the paper's
    (small) CNN prediction error.

Both views model the double-buffered overlap of the paper: the compute
phase of tile *i* hides the memory phase that fetches tile *i+1*, so each
tile contributes ``max(compute, memory)`` cycles.
"""

from __future__ import annotations

import dataclasses

from repro.npu.config import NPUConfig
from repro.npu.tiling import GemmShape, Tile, TilePlan


# ----------------------------------------------------------------------
# Per-tile phase models
# ----------------------------------------------------------------------
def compute_cycles_full(config: NPUConfig) -> int:
    """C1 in Algorithm 1: cycles for one full inner tile's GEMM_OP.

    ACC cycles of streaming plus SH cycles of pipeline fill plus 2*SW of
    weight staging / result drain through the array columns.
    """
    return config.acc_depth + config.array_height + 2 * config.array_width


def compute_cycles_partial_n(config: NPUConfig, n_remainder: int) -> int:
    """C2 in Algorithm 1: compute cycles for the partial-n outer tile."""
    return n_remainder + config.array_height + 2 * config.array_width


def memory_cycles_full(config: NPUConfig) -> float:
    """M1 in Algorithm 1: cycles to fetch one weight + one activation tile."""
    elems = config.weight_tile_elems + config.activation_tile_elems
    return elems * config.data_bytes / config.bandwidth_bytes_per_cycle


def memory_cycles_partial_n(config: NPUConfig, n_remainder: int) -> float:
    """M2 in Algorithm 1: fetch cycles when the activation tile is partial."""
    elems = config.weight_tile_elems + config.array_height * n_remainder
    return elems * config.data_bytes / config.bandwidth_bytes_per_cycle


def tile_compute_cycles(config: NPUConfig, tile: Tile) -> int:
    """Engine view: compute cycles for one tile.

    Streaming length follows the tile's actual ``acc`` extent, but the
    pipeline fill/drain terms use the *physical* array dimensions: data
    pulsates through all SH rows and SW columns regardless of how much of
    the array holds useful weights (partial tiles waste the idle PEs --
    the under-utilization behaviour of the paper's Fig 10).
    """
    return tile.acc + config.array_height + 2 * config.array_width


def tile_memory_cycles(config: NPUConfig, tile: Tile) -> float:
    """Engine view: fetch cycles using the tile's true extents."""
    elems = tile.sh * tile.sw + tile.sh * tile.acc
    return elems * config.data_bytes / config.bandwidth_bytes_per_cycle


def tile_cycles(config: NPUConfig, tile: Tile) -> float:
    """Engine view: double-buffered cost of one tile."""
    return max(tile_compute_cycles(config, tile), tile_memory_cycles(config, tile))


# ----------------------------------------------------------------------
# Whole-GEMM timing
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class GemmTiming:
    """Timing summary for one tiled GEMM."""

    shape: GemmShape
    total_cycles: float
    tile_count: int
    #: Average cycles per tile; the simulator snaps preemption points to
    #: multiples of this (tile-boundary preemption, Sec IV-C footnote 2).
    mean_tile_cycles: float

    @property
    def macs(self) -> int:
        return self.shape.macs

    def effective_macs_per_cycle(self) -> float:
        if self.total_cycles == 0:
            return 0.0
        return self.shape.macs / self.total_cycles


def predicted_gemm_cycles(shape: GemmShape, config: NPUConfig) -> float:
    """Algorithm 1's per-layer estimate (with ceil m/k counts, DESIGN.md #1)."""
    plan = TilePlan(shape=shape, config=config)
    c1 = compute_cycles_full(config)
    m1 = memory_cycles_full(config)
    inner = max(c1, m1)
    total = plan.n_inner_tiles * inner
    if plan.n_outer_tiles:
        c2 = compute_cycles_partial_n(config, plan.n_remainder)
        m2 = memory_cycles_partial_n(config, plan.n_remainder)
        total += plan.n_outer_tiles * max(c2, m2)
    return total


def engine_gemm_timing(shape: GemmShape, config: NPUConfig) -> GemmTiming:
    """Ground-truth timing: per-tile extents, double-buffered overlap.

    The first tile has no previous compute phase to hide behind, so the
    engine adds one un-hidden memory phase up front (cold start), matching
    the cycle-stepping reference simulator.
    """
    plan = TilePlan(shape=shape, config=config)
    total = 0.0
    count = 0
    first_tile_memory = 0.0
    for tile in plan.tiles():
        if count == 0:
            first_tile_memory = tile_memory_cycles(config, tile)
        total += tile_cycles(config, tile)
        count += 1
    total += first_tile_memory + config.memory_latency_cycles
    mean = total / count if count else 0.0
    return GemmTiming(
        shape=shape,
        total_cycles=total,
        tile_count=count,
        mean_tile_cycles=mean,
    )


def vector_op_cycles(config: NPUConfig, elems: int) -> float:
    """Cycles for an element-wise VECTOR_OP over ``elems`` elements.

    The vector pipeline runs concurrently with the GEMM unit; the engine
    charges only the un-overlapped tail of the final output tile per layer
    (see engine.py), but standalone ACTV/POOL layers pay this in full.
    """
    if elems < 0:
        raise ValueError("elems must be >= 0")
    return elems / config.vector_lanes


def store_cycles(config: NPUConfig, out_bytes: int) -> float:
    """Cycles for a STORE_TILE DMA of ``out_bytes`` back to DRAM."""
    if out_bytes < 0:
        raise ValueError("out_bytes must be >= 0")
    return out_bytes / config.bandwidth_bytes_per_cycle + config.memory_latency_cycles
