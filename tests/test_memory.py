"""Memory subsystem model: transfer times and edge cases."""

import pytest

from repro.npu.memory import MemorySystem


@pytest.fixture(scope="module")
def memory(config):
    return MemorySystem(config)


class TestTransferCycles:
    def test_zero_bytes_free(self, memory):
        assert memory.transfer_cycles(0) == 0.0

    def test_includes_access_latency(self, memory, config):
        assert memory.transfer_cycles(1) == pytest.approx(
            1 / config.bandwidth_bytes_per_cycle + config.memory_latency_cycles
        )

    def test_linear_in_bytes(self, memory, config):
        one_mb = memory.transfer_cycles(1 << 20)
        two_mb = memory.transfer_cycles(2 << 20)
        lat = config.memory_latency_cycles
        assert (two_mb - lat) == pytest.approx(2 * (one_mb - lat))

    def test_rejects_negative(self, memory):
        with pytest.raises(ValueError):
            memory.transfer_cycles(-1)

    def test_eight_mb_checkpoint_tens_of_us(self, memory):
        # Sanity anchor for Fig 5: a whole-UBUF checkpoint lands in the
        # tens-of-microseconds regime the paper reports.
        us = memory.transfer_us(8 * 1024 * 1024)
        assert 15.0 < us < 60.0


class TestStreaming:
    def test_streaming_has_no_latency(self, memory, config):
        assert memory.streaming_cycles(1024) == pytest.approx(
            1024 / config.bandwidth_bytes_per_cycle
        )

    def test_streaming_rejects_negative(self, memory):
        with pytest.raises(ValueError):
            memory.streaming_cycles(-5)


class TestChannelView:
    def test_per_channel_bandwidth(self, memory, config):
        assert memory.bytes_per_channel_per_cycle == pytest.approx(
            memory.bytes_per_cycle / config.memory_channels
        )
