"""Multi-NPU cluster layer (the Sec II-C future-work extension)."""

import pytest

from repro.sched.cluster import ClusterScheduler, RoutingPolicy
from repro.sched.metrics import compute_metrics
from repro.sched.simulator import PreemptionMode, SimulationConfig
from repro.workloads.generator import WorkloadGenerator


@pytest.fixture(scope="module")
def workload(config):
    return WorkloadGenerator(
        seed=50, arrival_window_cycles=config.ms_to_cycles(20.0)
    ).generate(num_tasks=12)


def make_cluster(config, num_devices, routing, policy="PREMA",
                 mode=PreemptionMode.DYNAMIC):
    return ClusterScheduler(
        num_devices=num_devices,
        simulation_config=SimulationConfig(npu=config, mode=mode),
        policy_name=policy,
        routing=routing,
    )


class TestRouting:
    def test_round_robin_spreads_evenly(self, config, factory, workload):
        cluster = make_cluster(config, 4, RoutingPolicy.ROUND_ROBIN)
        tasks = factory.build_workload(workload)
        assignments = cluster.route(tasks)
        counts = [list(assignments.values()).count(d) for d in range(4)]
        assert max(counts) - min(counts) <= 1

    def test_least_loaded_uses_estimates(self, config, factory, workload):
        cluster = make_cluster(config, 2, RoutingPolicy.LEAST_LOADED)
        tasks = factory.build_workload(workload)
        assignments = cluster.route(tasks)
        # Both devices get work (a single hot device would defeat routing).
        assert set(assignments.values()) == {0, 1}

    def test_random_routing_seeded(self, config, factory, workload):
        tasks_a = factory.build_workload(workload)
        tasks_b = factory.build_workload(workload)
        cluster = make_cluster(config, 4, RoutingPolicy.RANDOM)
        assert cluster.route(tasks_a) == cluster.route(tasks_b)

    def test_single_device_gets_everything(self, config, factory, workload):
        cluster = make_cluster(config, 1, RoutingPolicy.LEAST_LOADED)
        tasks = factory.build_workload(workload)
        assert set(cluster.route(tasks).values()) == {0}


class TestClusterExecution:
    def test_all_tasks_complete(self, config, factory, workload):
        cluster = make_cluster(config, 3, RoutingPolicy.LEAST_LOADED)
        result = cluster.run(factory.build_workload(workload))
        assert all(task.is_done for task in result.tasks)
        assert result.num_devices == 3

    def test_assignments_cover_all_tasks(self, config, factory, workload):
        cluster = make_cluster(config, 2, RoutingPolicy.ROUND_ROBIN)
        result = cluster.run(factory.build_workload(workload))
        assert set(result.assignments) == {t.task_id for t in result.tasks}

    def test_more_devices_never_worse_antt(self, config, factory, workload):
        antts = []
        for devices in (1, 2, 4):
            cluster = make_cluster(config, devices, RoutingPolicy.LEAST_LOADED)
            result = cluster.run(factory.build_workload(workload))
            antts.append(compute_metrics(result.tasks).antt)
        assert antts[1] <= antts[0] * 1.01
        assert antts[2] <= antts[1] * 1.01

    def test_utilization_per_device(self, config, factory, workload):
        cluster = make_cluster(config, 2, RoutingPolicy.LEAST_LOADED)
        result = cluster.run(factory.build_workload(workload))
        utilization = result.device_utilization()
        assert len(utilization) == 2
        assert all(0.0 <= u <= 1.0 for u in utilization)

    def test_predictive_routing_beats_random(self, config, factory):
        # Averaged over several workloads, estimate-driven balancing should
        # not lose to blind random placement.
        workloads = WorkloadGenerator(
            seed=51, arrival_window_cycles=config.ms_to_cycles(15.0)
        ).generate_many(6, num_tasks=10)
        def mean_antt(routing):
            total = 0.0
            for workload in workloads:
                cluster = make_cluster(config, 2, routing)
                result = cluster.run(factory.build_workload(workload))
                total += compute_metrics(result.tasks).antt
            return total / len(workloads)

        assert mean_antt(RoutingPolicy.LEAST_LOADED) <= \
            mean_antt(RoutingPolicy.RANDOM) * 1.05

    def test_validation(self, config):
        with pytest.raises(ValueError):
            ClusterScheduler(0, SimulationConfig(npu=config))
        cluster = make_cluster(config, 2, RoutingPolicy.ROUND_ROBIN)
        with pytest.raises(ValueError):
            cluster.run([])


class TestClusterExperiment:
    def test_scaling_harness(self, config, factory):
        from repro.analysis.experiments.cluster_scaling import (
            format_cluster_scaling,
            run_cluster_scaling,
        )

        rows = run_cluster_scaling(
            config=config, factory=factory, num_tasks=8, num_workloads=2,
            device_counts=(1, 2),
        )
        assert len(rows) == 10  # 2 device counts x 5 combos
        by_key = {(r.num_devices, r.routing, r.device_policy): r for r in rows}
        # Scaling out reduces ANTT for every combo.
        for routing, policy in (
            ("round-robin", "FCFS"),
            ("round-robin", "PREMA"),
            ("static", "PREMA"),
            ("online-predicted", "PREMA"),
            ("work-stealing", "PREMA"),
        ):
            assert by_key[(2, routing, policy)].antt <= \
                by_key[(1, routing, policy)].antt * 1.01
        assert "multi-NPU" in format_cluster_scaling(rows)
