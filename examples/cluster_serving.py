#!/usr/bin/env python
"""Node-level serving across multiple preemptible NPUs.

The paper (Sec II-C) scopes itself to one NPU and leaves multi-NPU
node-level policy as future work.  This example runs that layer as one
event-driven cluster simulation: a router dispatches a burst of
mixed-tenant requests to a pool of NPUs, comparing blind round-robin
against predictive routing in its three flavours -- a static up-front
pass over Algorithm-1 estimates, online per-arrival dispatch against each
device's live predicted backlog, online dispatch plus work stealing
(idle devices pull still-queued tasks from backlogged neighbours), and
preemptive checkpoint migration (idle devices additionally pull preempted
tasks by shipping their DRAM checkpoints over a modeled PCIe-class
interconnect, with cluster-global token fairness).

Run:  python examples/cluster_serving.py [num_devices] [--trace out.json]

``--trace`` records the final combo (migration + PREMA) with the
structured tracer and writes a Chrome-trace/Perfetto JSON artifact --
open it at https://ui.perfetto.dev, or summarize it with
``python -m repro.analysis.obs_report out.json`` (see
docs/observability.md).
"""

import argparse

from repro import NPUConfig, TaskFactory, WorkloadGenerator
from repro.obs import Tracer
from repro.sched.cluster import (
    ClusterConfig,
    ClusterScheduler,
    RoutingPolicy,
)
from repro.sched.metrics import compute_cluster_metrics
from repro.sched.simulator import PreemptionMode, SimulationConfig

COMBOS = (
    ("round-robin + NP-FCFS", RoutingPolicy.ROUND_ROBIN, "FCFS",
     PreemptionMode.NP),
    ("round-robin + PREMA", RoutingPolicy.ROUND_ROBIN, "PREMA",
     PreemptionMode.DYNAMIC),
    ("static + PREMA", RoutingPolicy.STATIC, "PREMA",
     PreemptionMode.DYNAMIC),
    ("online + PREMA", RoutingPolicy.ONLINE_PREDICTED, "PREMA",
     PreemptionMode.DYNAMIC),
    ("stealing + PREMA", RoutingPolicy.WORK_STEALING, "PREMA",
     PreemptionMode.DYNAMIC),
    ("migration + PREMA", RoutingPolicy.PREEMPTIVE_MIGRATION, "PREMA",
     PreemptionMode.DYNAMIC),
)


def main(num_devices: int = 4, trace_path: str = None) -> None:
    config = NPUConfig()
    factory = TaskFactory(config)
    workload = WorkloadGenerator(
        seed=8, arrival_window_cycles=config.ms_to_cycles(25.0)
    ).generate(num_tasks=24)
    print(
        f"Routing {len(workload)} requests onto {num_devices} NPUs "
        "(arrival window 25 ms)\n"
    )
    print(f"{'configuration':22s} {'ANTT':>7s} {'fairness':>9s} "
          f"{'makespan ms':>12s} {'queue ms':>9s} {'migr':>5s} "
          f"{'device utilization':>20s}")
    for index, (label, routing, policy, mode) in enumerate(COMBOS):
        tracer = None
        if trace_path is not None and index == len(COMBOS) - 1:
            # Trace only the headline combo: same decisions either way
            # (tracing is observational), so the table is unaffected.
            tracer = Tracer()
        cluster = ClusterScheduler(
            num_devices=num_devices,
            simulation_config=SimulationConfig(npu=config, mode=mode),
            config=ClusterConfig(
                policy_name=policy, routing=routing, tracer=tracer
            ),
        )
        tasks = factory.build_workload(workload)
        result = cluster.run(tasks)
        metrics = compute_cluster_metrics(result)
        utilization = " ".join(
            f"{u:4.0%}" for u in result.device_utilization()
        )
        print(
            f"{label:22s} {metrics.antt:7.2f} {metrics.fairness:9.3f} "
            f"{config.cycles_to_ms(metrics.makespan_cycles):12.2f} "
            f"{config.cycles_to_ms(metrics.mean_queueing_delay_cycles):9.2f} "
            f"{metrics.migration_count:5d} "
            f"{utilization:>20s}"
        )
        if tracer is not None:
            tracer.write(trace_path)
            print(
                f"\nwrote {len(tracer)} trace events for '{label}' to "
                f"{trace_path} (open at https://ui.perfetto.dev)"
            )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "num_devices", nargs="?", type=int, default=4,
        help="NPUs in the pool (default: 4)",
    )
    parser.add_argument(
        "--trace", metavar="OUT.json", default=None,
        help="write a Perfetto trace of the final combo to this path",
    )
    cli = parser.parse_args()
    main(cli.num_devices, trace_path=cli.trace)
