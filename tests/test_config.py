"""NPUConfig (paper Table I) construction, validation, and conversions."""

import pytest

from repro.npu.config import DEFAULT_CONFIG, NPUConfig


class TestTableIDefaults:
    def test_array_dimensions(self, config):
        assert config.array_width == 128
        assert config.array_height == 128

    def test_frequency(self, config):
        assert config.frequency_hz == pytest.approx(700e6)

    def test_sram_sizes(self, config):
        assert config.ubuf_bytes == 8 * 1024 * 1024
        assert config.wbuf_bytes == 4 * 1024 * 1024

    def test_memory_subsystem(self, config):
        assert config.memory_channels == 8
        assert config.memory_bandwidth_bytes_per_sec == pytest.approx(358e9)
        assert config.memory_latency_cycles == 100

    def test_data_widths(self, config):
        assert config.data_bytes == 2
        assert config.accum_bytes == 4

    def test_default_config_is_table_one(self, config):
        assert DEFAULT_CONFIG == config


class TestDerivedQuantities:
    def test_bandwidth_bytes_per_cycle(self, config):
        assert config.bandwidth_bytes_per_cycle == pytest.approx(358e9 / 700e6)

    def test_peak_macs_per_cycle(self, config):
        assert config.peak_macs_per_cycle == 128 * 128

    def test_accq_bytes(self, config):
        assert config.accq_bytes == 128 * config.acc_depth * 4

    def test_tile_element_counts(self, config):
        assert config.weight_tile_elems == 128 * 128
        assert config.activation_tile_elems == 128 * config.acc_depth
        assert config.output_tile_elems == 128 * config.acc_depth


class TestConversions:
    def test_cycles_to_us_roundtrip(self, config):
        assert config.us_to_cycles(config.cycles_to_us(700.0)) == pytest.approx(700.0)

    def test_one_ms_is_700k_cycles(self, config):
        assert config.ms_to_cycles(1.0) == pytest.approx(700e3)

    def test_cycles_to_seconds(self, config):
        assert config.cycles_to_seconds(700e6) == pytest.approx(1.0)

    def test_cycles_to_ms(self, config):
        assert config.cycles_to_ms(350e3) == pytest.approx(0.5)

    def test_seconds_to_cycles(self, config):
        assert config.seconds_to_cycles(2.0) == pytest.approx(1.4e9)


class TestValidation:
    @pytest.mark.parametrize(
        "field",
        [
            "array_width",
            "array_height",
            "acc_depth",
            "frequency_hz",
            "ubuf_bytes",
            "wbuf_bytes",
            "memory_channels",
            "memory_bandwidth_bytes_per_sec",
            "data_bytes",
            "accum_bytes",
            "vector_lanes",
        ],
    )
    def test_positive_fields_rejected_at_zero(self, field):
        with pytest.raises(ValueError):
            NPUConfig(**{field: 0})

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            NPUConfig(memory_latency_cycles=-1)

    def test_negative_trap_cycles_rejected(self):
        with pytest.raises(ValueError):
            NPUConfig(preemption_trap_cycles=-1)

    def test_config_is_frozen(self, config):
        with pytest.raises(Exception):
            config.array_width = 64  # type: ignore[misc]

    def test_custom_config_accepted(self):
        custom = NPUConfig(array_width=64, array_height=64, acc_depth=512)
        assert custom.peak_macs_per_cycle == 64 * 64
