"""Unit tests for the serving control plane (slo / feedback / admission)."""

import pytest

from repro.core.context import TaskContext
from repro.core.predictor import OraclePredictor
from repro.core.tokens import Priority
from repro.sched.task import TaskRuntime
from repro.serving.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
)
from repro.serving.feedback import PredictionFeedback
from repro.serving.slo import (
    DEFAULT_SLOS,
    PRIORITY_FOR_QOS,
    QOS_FOR_PRIORITY,
    QoSClass,
    ServiceLevel,
    SLOPolicy,
    qos_of,
)
from repro.workloads.specs import TaskSpec


class FakeProfile:
    def __init__(self, total_cycles):
        self.total_cycles = total_cycles


def make_task(task_id=0, priority=Priority.MEDIUM, qos=None,
              benchmark="CNN-AN", estimated=1000.0, isolated=1000.0,
              arrival=0.0):
    spec = TaskSpec(
        task_id=task_id, benchmark=benchmark, batch=1, priority=priority,
        arrival_cycles=arrival, qos=qos,
    )
    context = TaskContext(
        task_id=task_id, priority=priority, benchmark=benchmark,
        estimated_cycles=estimated, last_update_cycles=arrival,
    )
    return TaskRuntime(
        spec=spec, profile=FakeProfile(isolated), context=context,
    )


def complete(task, turnaround):
    task.completion_time = task.spec.arrival_cycles + turnaround
    return task


# ----------------------------------------------------------------------
# QoS classes / SLOs
# ----------------------------------------------------------------------
class TestQoS:
    def test_explicit_tag_wins(self):
        spec = TaskSpec(task_id=0, benchmark="CNN-AN", batch=1,
                        priority=Priority.LOW, arrival_cycles=0.0,
                        qos="interactive")
        assert qos_of(spec) is QoSClass.INTERACTIVE

    def test_priority_default(self):
        for priority, qos in QOS_FOR_PRIORITY.items():
            spec = TaskSpec(task_id=0, benchmark="CNN-AN", batch=1,
                            priority=priority, arrival_cycles=0.0)
            assert qos_of(spec) is qos

    def test_priority_map_is_involution(self):
        for priority, qos in QOS_FOR_PRIORITY.items():
            assert PRIORITY_FOR_QOS[qos] is priority

    def test_unknown_tag_rejected(self):
        spec = TaskSpec(task_id=0, benchmark="CNN-AN", batch=1,
                        priority=Priority.LOW, arrival_cycles=0.0,
                        qos="platinum")
        with pytest.raises(ValueError, match="platinum"):
            qos_of(spec)

    def test_met_by_slowdown_and_deadline(self):
        level = ServiceLevel(QoSClass.INTERACTIVE, slowdown_target=2.0,
                             deadline_cycles=500.0)
        assert level.met_by(turnaround_cycles=400.0, isolated_cycles=300.0)
        # Slowdown ok, deadline violated.
        assert not level.met_by(turnaround_cycles=600.0, isolated_cycles=400.0)
        # Deadline ok, slowdown violated.
        assert not level.met_by(turnaround_cycles=450.0, isolated_cycles=100.0)

    def test_service_level_validation(self):
        with pytest.raises(ValueError):
            ServiceLevel(QoSClass.BATCH, slowdown_target=0.0)
        with pytest.raises(ValueError):
            ServiceLevel(QoSClass.BATCH, slowdown_target=2.0,
                         deadline_cycles=-1.0)
        with pytest.raises(ValueError):
            ServiceLevel(QoSClass.BATCH, slowdown_target=2.0,
                         admission_share=0.0)

    def test_policy_requires_every_class(self):
        with pytest.raises(ValueError, match="missing service level"):
            SLOPolicy(levels={
                QoSClass.INTERACTIVE: ServiceLevel(QoSClass.INTERACTIVE, 2.0),
            })

    def test_policy_rejects_mistagged_level(self):
        levels = dict(DEFAULT_SLOS.levels)
        levels[QoSClass.BATCH] = ServiceLevel(QoSClass.STANDARD, 2.0)
        with pytest.raises(ValueError, match="tagged"):
            SLOPolicy(levels=levels)

    def test_task_met_slo_uses_class(self):
        task = complete(make_task(priority=Priority.HIGH, isolated=100.0),
                        turnaround=350.0)
        # Interactive default target is 4x -> 3.5x slowdown is met.
        assert DEFAULT_SLOS.task_met_slo(task)
        tight = complete(make_task(priority=Priority.HIGH, isolated=100.0),
                         turnaround=450.0)
        assert not DEFAULT_SLOS.task_met_slo(tight)


# ----------------------------------------------------------------------
# Prediction feedback
# ----------------------------------------------------------------------
class TestFeedback:
    def test_neutral_before_any_observation(self):
        feedback = PredictionFeedback()
        assert feedback.correction("CNN-AN") == 1.0
        assert feedback.correct("CNN-AN", 500.0) == 500.0
        assert feedback.observations == 0

    def test_learns_multiplicative_bias(self):
        feedback = PredictionFeedback(alpha=0.5)
        for _ in range(12):
            feedback.record("CNN-AN", predicted_cycles=500.0,
                            actual_cycles=1000.0)
        # Consistent 2x underestimate converges toward factor 2.
        assert feedback.correction("CNN-AN") == pytest.approx(2.0, rel=0.01)
        assert feedback.correct("CNN-AN", 500.0) == pytest.approx(1000.0,
                                                                  rel=0.01)

    def test_unseen_model_falls_back_to_global(self):
        feedback = PredictionFeedback(alpha=1.0)
        feedback.record("CNN-AN", 500.0, 1000.0)
        assert feedback.correction("CNN-GN") == pytest.approx(2.0)

    def test_mape_windows(self):
        feedback = PredictionFeedback(alpha=0.5)
        for _ in range(20):
            feedback.record("CNN-AN", 500.0, 1000.0)
        # Correction converges, so late MAPE < early MAPE < raw MAPE.
        assert feedback.mape(last=5) < feedback.mape(first=5)
        assert feedback.mape(first=5) < feedback.raw_mape()
        assert feedback.raw_mape() == pytest.approx(0.5)

    def test_mape_empty_window_raises(self):
        feedback = PredictionFeedback()
        with pytest.raises(ValueError):
            feedback.mape()
        with pytest.raises(ValueError):
            feedback.raw_mape()

    def test_observe_requires_completion(self):
        feedback = PredictionFeedback()
        with pytest.raises(ValueError, match="not completed"):
            feedback.observe(make_task())

    def test_observe_uses_override_estimate(self):
        feedback = PredictionFeedback(alpha=1.0)
        task = complete(
            make_task(estimated=800.0, isolated=1000.0), turnaround=1200.0
        )
        feedback.observe(task, predicted_cycles=500.0)
        assert feedback.correction("CNN-AN") == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PredictionFeedback(alpha=0.0)
        feedback = PredictionFeedback()
        with pytest.raises(ValueError):
            feedback.record("CNN-AN", 0.0, 100.0)
        with pytest.raises(ValueError):
            feedback.correct("CNN-AN", -1.0)


class TestOracleObserve:
    def test_observe_registers_ground_truth(self):
        oracle = OraclePredictor()
        task = complete(make_task(task_id=7, isolated=1234.0),
                        turnaround=2000.0)
        oracle.observe(task)
        assert 7 in oracle
        assert oracle.predict_task(7) == pytest.approx(1234.0)

    def test_observe_requires_completion(self):
        oracle = OraclePredictor()
        with pytest.raises(ValueError, match="not completed"):
            oracle.observe(make_task(task_id=7))

    def test_shared_surface_with_feedback(self):
        """Either learner plugs into the same completion hook."""
        task = complete(make_task(task_id=3, estimated=900.0,
                                  isolated=1000.0), turnaround=1500.0)
        for learner in (OraclePredictor(), PredictionFeedback()):
            learner.observe(task)


# ----------------------------------------------------------------------
# Admission controller
# ----------------------------------------------------------------------
class TestAdmissionDecisions:
    def test_accepts_within_slo(self):
        controller = AdmissionController()
        task = make_task(priority=Priority.HIGH, estimated=1000.0)
        record = controller.decide(task, backlog_cycles=1000.0, now=0.0)
        # Predicted slowdown 2.0 against the interactive 4x target.
        assert record.decision is AdmissionDecision.ACCEPT
        assert record.predicted_slowdown == pytest.approx(2.0)
        assert record.qos == "interactive"

    def test_defers_then_rejects(self):
        """A task can't defer forever: bounded retries, then reject."""
        config = AdmissionConfig(max_defers=2)
        controller = AdmissionController(config)
        task = make_task(priority=Priority.HIGH, estimated=1000.0)
        backlog = 1e7  # hopeless
        decisions = [
            controller.decide(task, backlog, now=float(i), attempt=i).decision
            for i in range(4)
        ]
        assert decisions == [
            AdmissionDecision.DEFER,
            AdmissionDecision.DEFER,
            AdmissionDecision.REJECT,
            AdmissionDecision.REJECT,
        ]

    def test_hopeless_task_rejected_without_futile_defers(self):
        """Waited time alone busting the target -> immediate reject:
        slowdown only grows with time, so no defer can ever help."""
        controller = AdmissionController(AdmissionConfig(max_defers=3))
        task = make_task(priority=Priority.HIGH, estimated=1000.0,
                         arrival=0.0)
        # Interactive target 4x; waited 3001 > (4-1)*1000 even with an
        # empty cluster.
        record = controller.decide(task, backlog_cycles=0.0, now=3001.0)
        assert record.decision is AdmissionDecision.REJECT
        assert record.attempt == 0

    def test_expired_deadline_rejected_without_defers(self):
        slos = SLOPolicy(levels={
            **DEFAULT_SLOS.levels,
            QoSClass.INTERACTIVE: ServiceLevel(
                QoSClass.INTERACTIVE, slowdown_target=1e9,
                deadline_cycles=2000.0,
            ),
        })
        controller = AdmissionController(AdmissionConfig(slos=slos))
        task = make_task(priority=Priority.HIGH, estimated=1000.0)
        record = controller.decide(task, backlog_cycles=0.0, now=1500.0)
        assert record.decision is AdmissionDecision.REJECT

    def test_zero_defers_rejects_immediately(self):
        controller = AdmissionController(AdmissionConfig(max_defers=0))
        task = make_task(priority=Priority.HIGH, estimated=1000.0)
        record = controller.decide(task, backlog_cycles=1e7, now=0.0)
        assert record.decision is AdmissionDecision.REJECT

    def test_waited_time_counts_against_slo(self):
        controller = AdmissionController()
        task = make_task(priority=Priority.HIGH, estimated=1000.0,
                         arrival=0.0)
        # Backlog pushes the prediction past the 4x interactive target
        # while the waited time alone (2000 = (target-2)*est) does not:
        # over-SLO but not hopeless, so retries being exhausted is what
        # forces the reject.
        record = controller.decide(task, backlog_cycles=2000.0, now=2000.0,
                                   attempt=controller.config.max_defers)
        assert record.decision is AdmissionDecision.REJECT
        assert record.predicted_slowdown == pytest.approx(5.0)

    def test_deadline_slo_enforced(self):
        slos = SLOPolicy(levels={
            **DEFAULT_SLOS.levels,
            QoSClass.INTERACTIVE: ServiceLevel(
                QoSClass.INTERACTIVE, slowdown_target=100.0,
                deadline_cycles=1500.0,
            ),
        })
        controller = AdmissionController(
            AdmissionConfig(slos=slos, max_defers=0)
        )
        task = make_task(priority=Priority.HIGH, estimated=1000.0)
        assert controller.decide(
            task, backlog_cycles=400.0, now=0.0
        ).decision is AdmissionDecision.ACCEPT
        late = make_task(task_id=1, priority=Priority.HIGH, estimated=1000.0)
        assert controller.decide(
            late, backlog_cycles=600.0, now=0.0
        ).decision is AdmissionDecision.REJECT

    def test_records_accumulate(self):
        controller = AdmissionController()
        task = make_task(priority=Priority.HIGH, estimated=1000.0)
        controller.decide(task, 0.0, now=0.0)
        controller.decide(task, 1e9, now=1.0)
        assert len(controller.records) == 2
        assert controller.decision_count(AdmissionDecision.ACCEPT) == 1
        assert controller.decision_count(AdmissionDecision.DEFER) == 1


class TestAdmissionBudgets:
    def _controller(self, floor=0.0):
        return AdmissionController(
            AdmissionConfig(budget_floor_cycles=floor, max_defers=0)
        )

    def test_batch_capped_at_share(self):
        controller = self._controller()
        # Fill the ledger with accepted interactive work.
        for task_id in range(6):
            task = make_task(task_id=task_id, priority=Priority.HIGH,
                             estimated=1000.0)
            controller.admit(task)
        assert controller.outstanding_cycles() == pytest.approx(6000.0)
        # Batch's default share is 0.4: a 5000-cycle batch arrival would
        # hold 5/11 > 0.4 of outstanding work -> budget-limited.
        batch = make_task(task_id=10, priority=Priority.LOW, estimated=5000.0)
        record = controller.decide(batch, backlog_cycles=0.0, now=0.0)
        assert record.decision is AdmissionDecision.REJECT
        assert record.budget_limited
        # A smaller batch task fits under the share.
        small = make_task(task_id=11, priority=Priority.LOW, estimated=1000.0)
        assert controller.decide(
            small, backlog_cycles=0.0, now=0.0
        ).decision is AdmissionDecision.ACCEPT

    def test_interactive_never_budget_limited(self):
        controller = self._controller()
        task = make_task(task_id=0, priority=Priority.HIGH, estimated=1e9)
        record = controller.decide(task, backlog_cycles=0.0, now=0.0)
        assert record.decision is AdmissionDecision.ACCEPT

    def test_floor_disables_budget_when_nearly_empty(self):
        controller = self._controller(floor=1e7)
        # Some interactive work outstanding, but the total sits below
        # the floor: budgets must not bind.
        controller.admit(make_task(task_id=5, priority=Priority.HIGH,
                                   estimated=1000.0))
        batch = make_task(task_id=0, priority=Priority.LOW, estimated=5000.0)
        assert controller.decide(
            batch, backlog_cycles=0.0, now=0.0
        ).decision is AdmissionDecision.ACCEPT

    def test_lone_class_fills_idle_cluster(self):
        """Work conservation: with no other class outstanding, a capped
        class is admitted regardless of floor or share."""
        controller = self._controller(floor=0.0)
        for task_id in range(3):
            batch = make_task(task_id=task_id, priority=Priority.LOW,
                              estimated=1e7)
            record = controller.decide(batch, backlog_cycles=0.0, now=0.0)
            assert record.decision is AdmissionDecision.ACCEPT
            assert not record.budget_limited
            controller.admit(batch)

    def test_completion_releases_budget(self):
        controller = self._controller()
        task = make_task(task_id=0, priority=Priority.LOW, estimated=1000.0)
        controller.admit(task)
        assert controller.outstanding_cycles("batch") == pytest.approx(1000.0)
        controller.on_complete(complete(task, turnaround=2000.0))
        assert controller.outstanding_cycles("batch") == 0.0

    def test_unknown_completion_ignored(self):
        controller = self._controller()
        controller.on_complete(complete(make_task(task_id=99),
                                        turnaround=10.0))
        assert controller.outstanding_cycles() == 0.0


class TestAdmissionFeedbackCoupling:
    def test_admit_applies_correction_to_context(self):
        feedback = PredictionFeedback(alpha=1.0)
        feedback.record("CNN-AN", 500.0, 1000.0)  # learned 2x factor
        controller = AdmissionController(feedback=feedback)
        task = make_task(estimated=600.0)
        controller.admit(task)
        assert task.context.estimated_cycles == pytest.approx(1200.0)

    def test_admit_without_feedback_leaves_context(self):
        controller = AdmissionController()
        task = make_task(estimated=600.0)
        controller.admit(task)
        assert task.context.estimated_cycles == pytest.approx(600.0)

    def test_on_complete_observes_raw_estimate(self):
        feedback = PredictionFeedback(alpha=1.0)
        controller = AdmissionController(feedback=feedback)
        task = make_task(estimated=500.0, isolated=1000.0)
        controller.admit(task)
        controller.on_complete(complete(task, turnaround=1500.0))
        # The observation used the raw 500-cycle estimate (not the
        # corrected context value), so the learned factor is exactly 2.
        assert feedback.correction("CNN-AN") == pytest.approx(2.0)

    def test_decide_uses_corrected_denominator(self):
        feedback = PredictionFeedback(alpha=1.0)
        feedback.record("CNN-AN", 500.0, 1000.0)
        controller = AdmissionController(feedback=feedback)
        task = make_task(priority=Priority.HIGH, estimated=1000.0)
        record = controller.decide(task, backlog_cycles=2000.0, now=0.0)
        # Corrected estimate 2000: slowdown (2000+2000)/2000 = 2.
        assert record.predicted_slowdown == pytest.approx(2.0)


class TestAdmissionConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_defers=-1)
        with pytest.raises(ValueError):
            AdmissionConfig(defer_delay_cycles=0.0)
        with pytest.raises(ValueError):
            AdmissionConfig(budget_floor_cycles=-1.0)
