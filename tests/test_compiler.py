"""Layer-to-instruction compiler: lowering correctness + accounting."""

import pytest

from repro.isa.compiler import compile_layer, compile_model
from repro.isa.instructions import Opcode
from repro.models.graph import Graph
from repro.models.layers import (
    Conv2D,
    FullyConnected,
    InputSpec,
    LSTMCell,
    Pool2D,
    Softmax,
)
from repro.npu.tiling import GemmShape, TilePlan


@pytest.fixture(scope="module")
def tiny_graph():
    graph = Graph("tiny", InputSpec(channels=3, height=16, width=16))
    graph.add(Conv2D("conv", out_channels=8, kernel=3, padding=1))
    graph.add(Pool2D("pool", kernel=2, stride=2))
    graph.add(FullyConnected("fc", out_features=10, fused_activation=None))
    graph.add(Softmax("prob"))
    return graph


class TestGemmLowering:
    def test_conv_uses_conv_op(self, tiny_graph, config):
        layer = compile_layer(tiny_graph["conv"], config, batch=1)
        assert layer.stream is not None
        assert layer.stream.count(Opcode.CONV_OP) == layer.total_tiles
        assert layer.stream.count(Opcode.GEMM_OP) == 0

    def test_fc_uses_gemm_op(self, tiny_graph, config):
        layer = compile_layer(tiny_graph["fc"], config, batch=1)
        assert layer.stream.count(Opcode.GEMM_OP) == layer.total_tiles
        assert layer.stream.count(Opcode.CONV_OP) == 0

    def test_lstm_uses_gemm_op(self, config):
        graph = Graph("rnn", InputSpec(channels=64))
        graph.add(LSTMCell("cell", hidden=64))
        layer = compile_layer(graph["cell"], config, batch=1)
        assert layer.stream.count(Opcode.GEMM_OP) == layer.total_tiles

    def test_one_store_per_output_tile(self, config):
        graph = Graph("g", InputSpec(channels=300))
        graph.add(FullyConnected("fc", out_features=300, fused_activation=None))
        layer = compile_layer(graph["fc"], config, batch=1)
        plan = TilePlan(layer.gemm_shapes[0], config)
        assert layer.stream.count(Opcode.STORE_TILE) == plan.m_tiles * plan.n_tiles

    def test_commit_flags_on_final_k_step(self, config):
        graph = Graph("g", InputSpec(channels=300))
        graph.add(FullyConnected("fc", out_features=100, fused_activation=None))
        layer = compile_layer(graph["fc"], config, batch=1)
        gemms = layer.stream.gemm_tiles()
        plan = TilePlan(layer.gemm_shapes[0], config)
        commits = [op for op in gemms if op.commits_output]
        assert len(commits) == plan.m_tiles * plan.n_tiles

    def test_loaded_weight_bytes_cover_all_weights(self, tiny_graph, config):
        layer = compile_layer(tiny_graph["conv"], config, batch=1)
        # Weight tiles re-stream per n tile in weight-stationary order, so
        # loaded bytes are at least the raw weight footprint.
        assert layer.stream.loaded_bytes("wbuf") >= layer.weight_elems * 2

    def test_stream_macs_match_layer_macs(self, tiny_graph, config):
        layer = compile_layer(tiny_graph["conv"], config, batch=1)
        assert layer.stream.total_macs() == layer.macs


class TestDepthwiseLowering:
    def test_one_gemm_per_group(self, config):
        graph = Graph("dw", InputSpec(channels=32, height=28, width=28))
        graph.add(
            Conv2D("dw", out_channels=32, kernel=3, padding=1, groups=32)
        )
        layer = compile_layer(graph["dw"], config, batch=1)
        assert len(layer.gemm_shapes) == 32
        assert all(s == GemmShape(m=1, k=9, n=784) for s in layer.gemm_shapes)


class TestVectorLowering:
    def test_pool_layer_only_vector(self, tiny_graph, config):
        layer = compile_layer(tiny_graph["pool"], config, batch=1)
        assert layer.total_tiles == 0
        assert layer.stream.count(Opcode.VECTOR_OP) == 1
        assert layer.macs == 0

    def test_softmax_layer_vector_elems(self, tiny_graph, config):
        layer = compile_layer(tiny_graph["prob"], config, batch=2)
        assert layer.vector_elems == 3 * 10 * 2


class TestCompileModel:
    def test_layer_count_matches_graph(self, tiny_graph, config):
        model = compile_model(tiny_graph, config, batch=1)
        assert len(model.layers) == len(tiny_graph)

    def test_total_macs_match_graph(self, tiny_graph, config):
        model = compile_model(tiny_graph, config, batch=4)
        assert model.total_macs == tiny_graph.total_macs(4)

    def test_batch_scales_gemm_n(self, tiny_graph, config):
        b1 = compile_model(tiny_graph, config, batch=1)
        b4 = compile_model(tiny_graph, config, batch=4)
        conv1, conv4 = b1.layers[0], b4.layers[0]
        assert conv4.gemm_shapes[0].n == 4 * conv1.gemm_shapes[0].n

    def test_materialize_streams_toggle(self, tiny_graph, config):
        without = compile_model(tiny_graph, config, batch=1)
        with_streams = compile_model(
            tiny_graph, config, batch=1, materialize_streams=True
        )
        assert all(layer.stream is None for layer in without.layers)
        assert all(layer.stream is not None for layer in with_streams.layers)
        # Geometry identical either way.
        assert without.total_tiles == with_streams.total_tiles
        assert without.total_macs == with_streams.total_macs

    def test_stream_tile_counts_match_plan_counts(self, tiny_graph, config):
        model = compile_model(tiny_graph, config, batch=1, materialize_streams=True)
        for layer in model.layers:
            if layer.is_gemm_layer:
                gemm_count = layer.stream.count(Opcode.GEMM_OP) + layer.stream.count(
                    Opcode.CONV_OP
                )
                assert gemm_count == layer.total_tiles

    def test_rejects_bad_batch(self, tiny_graph, config):
        with pytest.raises(ValueError):
            compile_model(tiny_graph, config, batch=0)

    def test_instruction_count_positive_when_materialized(self, tiny_graph, config):
        model = compile_model(tiny_graph, config, batch=1, materialize_streams=True)
        assert model.instruction_count() > 0
