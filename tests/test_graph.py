"""Computation graph: wiring, shape propagation, queries."""

import pytest

from repro.models.graph import Graph
from repro.models.layers import (
    Activation,
    Concat,
    Conv2D,
    FullyConnected,
    InputSpec,
    LayerKind,
)


@pytest.fixture()
def graph():
    g = Graph("g", InputSpec(channels=3, height=8, width=8))
    g.add(Conv2D("conv1", out_channels=4, kernel=3, padding=1))
    g.add(Conv2D("conv2", out_channels=4, kernel=1), inputs=["conv1"])
    g.add(Concat("cat"), inputs=["conv1", "conv2"])
    g.add(FullyConnected("fc", out_features=2, fused_activation=None))
    return g


class TestConstruction:
    def test_default_input_is_previous_node(self, graph):
        assert graph["fc"].input_names == ("cat",)

    def test_explicit_graph_input(self):
        g = Graph("g", InputSpec(channels=3))
        node = g.add(Activation("a"), inputs=[Graph.INPUT])
        assert node.input_specs[0] == g.input_spec

    def test_first_node_defaults_to_graph_input(self):
        g = Graph("g", InputSpec(channels=3))
        node = g.add(Activation("a"))
        assert node.input_names == (Graph.INPUT,)

    def test_duplicate_names_rejected(self, graph):
        with pytest.raises(ValueError):
            graph.add(Activation("conv1"))

    def test_unknown_input_rejected(self, graph):
        with pytest.raises(KeyError):
            graph.add(Activation("bad"), inputs=["nonexistent"])

    def test_forward_reference_impossible(self):
        # Nodes reference only earlier nodes => structurally acyclic.
        g = Graph("g", InputSpec(channels=3))
        with pytest.raises(KeyError):
            g.add(Activation("a"), inputs=["b"])

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Graph("", InputSpec(channels=1))

    def test_empty_inputs_rejected(self, graph):
        with pytest.raises(ValueError):
            graph.add(Activation("x"), inputs=[])


class TestShapePropagation:
    def test_concat_shape(self, graph):
        assert graph["cat"].output_spec.channels == 8

    def test_output_spec_is_last_node(self, graph):
        assert graph.output_spec == graph["fc"].output_spec

    def test_validate_passes(self, graph):
        graph.validate()


class TestQueries:
    def test_len_and_iter(self, graph):
        assert len(graph) == 4
        assert [n.name for n in graph] == ["conv1", "conv2", "cat", "fc"]

    def test_contains(self, graph):
        assert "conv1" in graph
        assert "nope" not in graph

    def test_nodes_of_kind(self, graph):
        assert len(graph.nodes_of_kind(LayerKind.CONV)) == 2
        assert len(graph.nodes_of_kind(LayerKind.FC)) == 1

    def test_consumers(self, graph):
        consumers = [n.name for n in graph.consumers("conv1")]
        assert consumers == ["conv2", "cat"]

    def test_total_weight_elems_positive(self, graph):
        assert graph.total_weight_elems() > 0

    def test_total_macs_scales_with_batch(self, graph):
        assert graph.total_macs(2) == 2 * graph.total_macs(1)

    def test_total_macs_rejects_bad_batch(self, graph):
        with pytest.raises(ValueError):
            graph.total_macs(0)

    def test_summary_mentions_every_node(self, graph):
        summary = graph.summary()
        for node in graph:
            assert node.name in summary
