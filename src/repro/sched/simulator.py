"""Event-driven multi-task NPU simulator (paper Secs III-V).

One NPU executes a multi-tasked workload under a (policy, preemption mode)
pair.  The scheduler wakes on the paper's three conditions -- task
dispatch, task completion, and scheduling-period expiry (Sec V-C) -- plus
the internal completion of a checkpoint trap.  Between wakes, the running
task advances analytically along its ground-truth execution profile.

Preemption modes:

``NP``
    Non-preemptive: the policy is consulted only when the NPU idles.
``STATIC``
    Preempt whenever the policy's candidate outranks the running task,
    always via the configured static mechanism (CHECKPOINT or KILL).
``DYNAMIC``
    PREMA's Algorithm 3: per preemption intent, choose CHECKPOINT or
    DRAIN from the predicted remaining times.
"""

from __future__ import annotations

import dataclasses
import enum
import heapq
import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.context import ContextTable, TaskContext, TaskState
from repro.core.mechanism import MechanismChoice, select_mechanism
from repro.core.scheduler import SchedulerConfig
from repro.npu.config import NPUConfig
from repro.npu.preemption import (
    CheckpointMechanism,
    KillMechanism,
    PreemptionMechanism,
)
from repro.sched.policies import Policy
from repro.sched.task import TaskRuntime
from repro.sched.timeline import SegmentKind, Timeline


class PreemptionMode(enum.Enum):
    NP = "np"
    STATIC = "static"
    DYNAMIC = "dynamic"


@dataclasses.dataclass(frozen=True)
class SimulationConfig:
    """Everything one simulation run needs besides the workload itself."""

    npu: NPUConfig
    mode: PreemptionMode = PreemptionMode.NP
    #: Preemption mechanism: "CHECKPOINT" or "KILL".  STATIC mode always
    #: uses it; DYNAMIC mode lets Algorithm 3 pick between it and DRAIN
    #: (the paper's Fig 15 sensitivity swaps CHECKPOINT for KILL here).
    mechanism: str = "CHECKPOINT"
    scheduler: SchedulerConfig = dataclasses.field(default_factory=SchedulerConfig)

    def __post_init__(self) -> None:
        if self.mechanism.upper() not in ("CHECKPOINT", "KILL"):
            raise ValueError("mechanism must be CHECKPOINT or KILL")


class _EventKind(enum.IntEnum):
    # Deterministic tie-break order at equal timestamps: finish work before
    # admitting new tasks, and let period ticks observe a settled state.
    COMPLETE = 0
    ARRIVAL = 1
    PERIOD = 2
    DISPATCH = 3


@dataclasses.dataclass(frozen=True)
class SimulationResult:
    """Outcome of one run: completed task runtimes + the NPU timeline."""

    tasks: Tuple[TaskRuntime, ...]
    timeline: Timeline
    makespan_cycles: float
    preemption_count: int
    drain_decisions: int

    def task_by_id(self, task_id: int) -> TaskRuntime:
        for task in self.tasks:
            if task.task_id == task_id:
                return task
        raise KeyError(f"no task {task_id}")


class NPUSimulator:
    """Simulate one workload on one NPU under one scheduling configuration."""

    def __init__(self, config: SimulationConfig, policy: Policy) -> None:
        self.config = config
        self.policy = policy
        self._checkpoint = CheckpointMechanism(config.npu)
        self._kill = KillMechanism(config.npu)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[TaskRuntime]) -> SimulationResult:
        """Execute the workload to completion and return the result."""
        if not tasks:
            raise ValueError("need at least one task")
        self.policy.reset()
        table = ContextTable()
        runtimes: Dict[int, TaskRuntime] = {}
        events: List[Tuple[float, int, int, _EventKind, object]] = []
        counter = itertools.count()
        timeline = Timeline()

        def push(time: float, kind: _EventKind, payload: object) -> None:
            heapq.heappush(events, (time, int(kind), next(counter), kind, payload))

        for task in tasks:
            if task.task_id in runtimes:
                raise ValueError(f"duplicate task id {task.task_id}")
            runtimes[task.task_id] = task
            push(task.spec.arrival_cycles, _EventKind.ARRIVAL, task.task_id)

        running_id: Optional[int] = None
        #: Wall-clock cycle until which the NPU is busy checkpointing.
        npu_reserved_until = 0.0
        preemption_count = 0
        drain_decisions = 0
        period = self.config.scheduler.period_cycles
        first_arrival = min(task.spec.arrival_cycles for task in tasks)
        push(first_arrival + period, _EventKind.PERIOD, None)
        completed = 0
        now = 0.0

        while events and completed < len(tasks):
            now, _, _, kind, payload = heapq.heappop(events)

            if kind == _EventKind.ARRIVAL:
                task = runtimes[payload]  # type: ignore[index]
                task.context.last_update_cycles = now
                table.add(task.context)
                running_id, did_preempt, did_drain = self._wake(
                    now, table, runtimes, running_id, npu_reserved_until,
                    push, timeline,
                )
                preemption_count += did_preempt
                drain_decisions += did_drain
                if did_preempt:
                    npu_reserved_until = self._reserved_until

            elif kind == _EventKind.COMPLETE:
                task_id, epoch = payload  # type: ignore[misc]
                task = runtimes[task_id]
                if task.epoch != epoch or task.context.state != TaskState.RUNNING:
                    continue  # stale completion from a preempted dispatch
                self._record_run_segments(timeline, task, now)
                task.complete(now)
                completed += 1
                if task_id == running_id:
                    running_id = None
                running_id, did_preempt, did_drain = self._wake(
                    now, table, runtimes, running_id, npu_reserved_until,
                    push, timeline,
                )
                preemption_count += did_preempt
                drain_decisions += did_drain
                if did_preempt:
                    npu_reserved_until = self._reserved_until

            elif kind == _EventKind.PERIOD:
                if completed < len(tasks):
                    push(now + period, _EventKind.PERIOD, None)
                self._accrue_ready(table, now)
                if self.policy.uses_tokens:
                    self.policy.on_period(table)
                running_id, did_preempt, did_drain = self._wake(
                    now, table, runtimes, running_id, npu_reserved_until,
                    push, timeline, accounting_done=True,
                )
                preemption_count += did_preempt
                drain_decisions += did_drain
                if did_preempt:
                    npu_reserved_until = self._reserved_until

            elif kind == _EventKind.DISPATCH:
                task_id = payload  # type: ignore[assignment]
                task = runtimes[task_id]
                if task.is_done or task.context.state == TaskState.RUNNING:
                    continue
                running_id = self._dispatch(now, task, push, timeline)

        makespan = max(
            task.completion_time for task in tasks if task.completion_time
        )
        return SimulationResult(
            tasks=tuple(tasks),
            timeline=timeline,
            makespan_cycles=makespan,
            preemption_count=preemption_count,
            drain_decisions=drain_decisions,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    _reserved_until: float = 0.0

    @staticmethod
    def _accrue_ready(table: ContextTable, now: float) -> None:
        for row in table.ready():
            row.accrue_wait(now)

    def _dispatch(self, now, task: TaskRuntime, push, timeline) -> int:
        completion = task.dispatch(now)
        push(completion, _EventKind.COMPLETE, (task.task_id, task.epoch))
        return task.task_id

    def _record_run_segments(
        self, timeline: Timeline, task: TaskRuntime, end: float
    ) -> None:
        """Record the restore + run spans of the dispatch ending at ``end``."""
        start = task.dispatch_time
        if start is None:
            return
        restore_end = start + task.dispatch_restore
        timeline.record(task.task_id, SegmentKind.RESTORE, start, restore_end)
        timeline.record(task.task_id, SegmentKind.RUN, restore_end, end)

    def _wake(
        self,
        now: float,
        table: ContextTable,
        runtimes: Dict[int, TaskRuntime],
        running_id: Optional[int],
        npu_reserved_until: float,
        push,
        timeline: Timeline,
        accounting_done: bool = False,
    ) -> Tuple[Optional[int], int, int]:
        """Run the scheduler; returns (running_id, preempted?, drained?)."""
        if not accounting_done:
            self._accrue_ready(table, now)
        ready = table.ready()
        if running_id is None:
            if now < npu_reserved_until:
                # A checkpoint trap is in flight; the reserved DISPATCH
                # event will start the chosen candidate.
                return None, 0, 0
            candidate_ctx = self.policy.select(ready)
            if candidate_ctx is None:
                return None, 0, 0
            return (
                self._dispatch(now, runtimes[candidate_ctx.task_id], push, timeline),
                0,
                0,
            )

        if self.config.mode == PreemptionMode.NP:
            return running_id, 0, 0

        candidate_ctx = self.policy.select(ready)
        if candidate_ctx is None:
            return running_id, 0, 0
        running = runtimes[running_id]
        # Token-driven policies re-rank on every period tick as waiting
        # tasks earn tokens; the scheduling-period time-quota (Table II)
        # guarantees the running task at least one quota of service so
        # token drift cannot ping-pong the NPU between two tasks.
        if self.policy.uses_tokens and running.dispatch_time is not None:
            if now - running.dispatch_time < self.config.scheduler.period_cycles:
                return running_id, 0, 0
        # Refresh the running task's accounted progress for ranking.
        running.context.executed_cycles = running.progress_at(now)
        if not self.policy.outranks(candidate_ctx, running.context, ready):
            return running_id, 0, 0

        mechanism: PreemptionMechanism = (
            self._kill
            if self.config.mechanism.upper() == "KILL"
            else self._checkpoint
        )
        if self.config.mode == PreemptionMode.DYNAMIC:
            choice = select_mechanism(running.context, candidate_ctx)
            if choice == MechanismChoice.DRAIN:
                return running_id, 0, 1

        # Apply the mechanism at the running task's current progress.
        progress = running.progress_at(now)
        outcome = mechanism.preempt(running.profile, progress)
        # Wall-clock when the in-flight tile commits (boundary), then trap.
        # A request arriving during the restore phase waits for it.
        boundary_wall = running.wall_time_at_offset(outcome.boundary_offset)
        free_at = boundary_wall + outcome.preemption_latency
        self._record_run_segments(timeline, running, boundary_wall)
        if outcome.preemption_latency > 0:
            timeline.record(
                running.task_id, SegmentKind.CHECKPOINT, boundary_wall, free_at
            )
        running.record_preemption(
            now=boundary_wall,
            retained_offset=outcome.retained_offset,
            restore_latency=outcome.restore_latency,
            checkpoint_bytes=outcome.checkpoint_bytes,
            killed=isinstance(mechanism, KillMechanism),
        )
        self._reserved_until = free_at
        push(free_at, _EventKind.DISPATCH, candidate_ctx.task_id)
        return None, 1, 0
