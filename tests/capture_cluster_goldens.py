"""Regenerate the cluster-routing golden file (see tests/helpers_golden.py).

Usage::

    PYTHONPATH=src python tests/capture_cluster_goldens.py

The committed golden pins every routing policy -- checkpoint migration
included -- on 2/4/8-device clusters with rotating device schedulers.
Regenerating it is only justified alongside an intentional, documented
behavioral change.
"""

import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

import helpers_golden  # noqa: E402


def main() -> None:
    start = time.perf_counter()
    payload = helpers_golden.capture_cluster()
    path = helpers_golden.write_cluster_goldens(payload)
    elapsed = time.perf_counter() - start
    print(
        f"wrote {len(payload['runs'])} cluster golden runs to {path} "
        f"in {elapsed:.1f}s"
    )


if __name__ == "__main__":
    main()
