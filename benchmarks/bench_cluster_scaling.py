"""Extension bench: multi-NPU node-level scheduling (Sec II-C future work)."""

from repro.analysis.experiments.cluster_scaling import (
    format_cluster_scaling,
    run_cluster_scaling,
)


def test_cluster_scaling(benchmark, config, factory, emit):
    rows = benchmark.pedantic(
        run_cluster_scaling,
        kwargs=dict(config=config, factory=factory, num_tasks=24,
                    num_workloads=4),
        rounds=1,
        iterations=1,
    )
    emit("cluster_scaling", format_cluster_scaling(rows))
    by_key = {(r.num_devices, r.routing, r.device_policy): r for r in rows}
    for devices in (1, 2, 4):
        # PREMA devices beat NP-FCFS devices at every cluster size.
        assert by_key[(devices, "round-robin", "PREMA")].antt <= \
            by_key[(devices, "round-robin", "FCFS")].antt
        # Predictive routing never loses to blind round-robin.
        assert by_key[(devices, "static", "PREMA")].antt <= \
            by_key[(devices, "round-robin", "PREMA")].antt * 1.05
        # Online dispatch targets device start times, so it never loses
        # to the static up-front pass on *makespan*; its ANTT may trade
        # a few percent for that.  Work stealing never loses to plain
        # online dispatch.
        assert by_key[(devices, "online-predicted", "PREMA")].makespan_ms <= \
            by_key[(devices, "static", "PREMA")].makespan_ms * 1.01
        assert by_key[(devices, "online-predicted", "PREMA")].antt <= \
            by_key[(devices, "static", "PREMA")].antt * 1.05
        assert by_key[(devices, "work-stealing", "PREMA")].makespan_ms <= \
            by_key[(devices, "online-predicted", "PREMA")].makespan_ms * 1.01
    # Scaling out helps: 4 devices strictly beat 1 on ANTT.
    assert by_key[(4, "work-stealing", "PREMA")].antt < \
        by_key[(1, "work-stealing", "PREMA")].antt
