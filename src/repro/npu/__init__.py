"""NPU substrate: a TPU-like systolic-array performance model.

This subpackage implements the hardware the paper's scheduler runs on:

- :mod:`repro.npu.config` -- Table I configuration parameters.
- :mod:`repro.npu.tiling` -- inner/outer GEMM tile decomposition (Fig 3c).
- :mod:`repro.npu.systolic` -- weight-stationary GEMM timing (Fig 3b).
- :mod:`repro.npu.memory` -- fixed bandwidth/latency memory + DMA model.
- :mod:`repro.npu.buffers` -- UBUF/ACCQ/weight-buffer occupancy tracking.
- :mod:`repro.npu.engine` -- double-buffered layer/network execution model.
- :mod:`repro.npu.cycle_sim` -- cycle-stepping reference simulator used to
  cross-validate the closed-form engine (the SCALE-Sim role in the paper).
- :mod:`repro.npu.preemption` -- KILL / CHECKPOINT / DRAIN mechanisms.
- :mod:`repro.npu.sparse` -- SCNN-style sparsity-aware latency model.

Only the leaf modules (config, memory) are re-exported here: the engine
and preemption modules depend on :mod:`repro.isa`, which itself builds on
the NPU leaf modules, so re-exporting them from this package would create
an import cycle.  Import them from their own modules.
"""

from repro.npu.config import NPUConfig
from repro.npu.memory import MemorySystem

__all__ = ["NPUConfig", "MemorySystem"]
