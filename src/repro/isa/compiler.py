"""Compile a DNN graph into per-layer tiled instruction streams.

The compiler walks the graph in topological order and, for each node,
emits the LOAD/GEMM/VECTOR/STORE sequence the baseline NPU executes
(Sec II-B): weights stage through the weight buffer, activations stream
through UBUF, convolutions lower to GEMM via im2col, and fused ACTV work
rides VECTOR_OP.  The result -- a :class:`CompiledModel` -- is the single
artifact both the execution engine (ground truth) and the Algorithm-1
predictor consume, so they are guaranteed to agree on *what* executes and
differ only in how precisely they time it.

Timing works entirely from the geometric tile plans, so materializing the
per-tile instruction objects is optional (``materialize_streams``): the
multi-task simulator compiles thousands of task programs and skips them,
while tests and the cycle-stepping validator keep them.  Tests pin that
both paths agree on every aggregate.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.isa.instructions import (
    ConvOp,
    GemmOp,
    InstructionStream,
    LoadTile,
    StoreTile,
    VectorOp,
)
from repro.models.graph import Graph, Node, balanced_partition
from repro.models.layers import LayerKind
from repro.npu.config import NPUConfig
from repro.npu.tiling import GemmShape, TilePlan


@dataclasses.dataclass(frozen=True)
class CompiledLayer:
    """One graph node lowered onto the NPU."""

    node_index: int
    name: str
    kind: LayerKind
    #: GEMMs this layer executes (several for grouped/depthwise conv).
    gemm_shapes: Tuple[GemmShape, ...]
    #: Total GEMM tiles across all the layer's GEMMs.
    total_tiles: int
    #: Output activation elements (per full batch).
    out_elems: int
    #: Vector-unit elements (fused activation / pooling / gate math).
    vector_elems: int
    #: Weight elements staged for this layer.
    weight_elems: int
    #: Total MACs.
    macs: int
    #: Lowered instruction stream (None when not materialized).
    stream: Optional[InstructionStream]

    @property
    def is_gemm_layer(self) -> bool:
        return bool(self.gemm_shapes)

    @property
    def out_elems_per_tile(self) -> float:
        """Average output elements committed per tile (checkpoint model)."""
        if self.total_tiles == 0:
            return 0.0
        return self.out_elems / self.total_tiles


@dataclasses.dataclass(frozen=True)
class CompiledModel:
    """A whole network lowered for one batch size."""

    name: str
    batch: int
    layers: Tuple[CompiledLayer, ...]

    def __post_init__(self) -> None:
        if self.batch <= 0:
            raise ValueError("batch must be positive")

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def total_tiles(self) -> int:
        return sum(layer.total_tiles for layer in self.layers)

    @property
    def total_weight_bytes(self) -> int:
        # Weight elements are summed per layer; shared embeddings across
        # unrolled time steps still re-stream per step on this NPU.
        return sum(layer.weight_elems for layer in self.layers) * 2

    def gemm_layers(self) -> List[CompiledLayer]:
        return [layer for layer in self.layers if layer.is_gemm_layer]

    def instruction_count(self) -> int:
        return sum(
            len(layer.stream) for layer in self.layers if layer.stream is not None
        )


def _lower_gemm_layer(
    node: Node,
    shapes: Sequence[GemmShape],
    config: NPUConfig,
    batch: int,
    opcode_cls: type,
) -> InstructionStream:
    """Emit the tile loop for a CONV/FC/RECR node.

    Weight-stationary order per GEMM: for each weight tile, LOAD_TILE the
    weights, then for each activation tile LOAD_TILE + GEMM_OP, with the
    output committed on the final reduction (k) step and STORE_TILE'd.
    Grouped convs repeat the loop per group.
    """
    stream = InstructionStream(label=node.name)
    data = config.data_bytes
    for shape in shapes:
        plan = TilePlan(shape=shape, config=config)
        for m_index in range(plan.m_tiles):
            for n_index in range(plan.n_tiles):
                out_tile_elems = 0
                for k_index in range(plan.k_tiles):
                    tile = plan.tile_at(m_index, k_index, n_index)
                    stream.append(
                        LoadTile(num_bytes=tile.sh * tile.sw * data, destination="wbuf")
                    )
                    stream.append(
                        LoadTile(num_bytes=tile.sh * tile.acc * data, destination="ubuf")
                    )
                    commits = k_index == plan.k_tiles - 1
                    stream.append(opcode_cls(tile=tile, commits_output=commits))
                    if commits:
                        out_tile_elems = tile.sw * tile.acc
                stream.append(StoreTile(num_bytes=out_tile_elems * data))
    vector = node.layer.vector_elems(list(node.input_specs), batch)
    if vector:
        stream.append(VectorOp(num_elems=vector))
    return stream


def _lower_vector_layer(node: Node, config: NPUConfig, batch: int) -> InstructionStream:
    """Emit the stream for ACTV/POOL/SOFTMAX/EMBED/CONCAT nodes."""
    stream = InstructionStream(label=node.name)
    data = config.data_bytes
    if node.kind == LayerKind.EMBED:
        # Embedding lookups pull `dim` elements per batch row from DRAM.
        out_elems = node.output_spec.elems * batch
        stream.append(LoadTile(num_bytes=out_elems * data, destination="ubuf"))
    vector = node.layer.vector_elems(list(node.input_specs), batch)
    if vector:
        stream.append(VectorOp(num_elems=vector))
    return stream


def compile_layer(
    node: Node, config: NPUConfig, batch: int, materialize_stream: bool = True
) -> CompiledLayer:
    """Lower one graph node to a :class:`CompiledLayer`."""
    inputs = list(node.input_specs)
    shapes = tuple(node.layer.gemms(inputs, batch))
    stream: Optional[InstructionStream] = None
    if shapes:
        total_tiles = sum(
            TilePlan(shape=s, config=config).total_tiles for s in shapes
        )
        if materialize_stream:
            opcode_cls = ConvOp if node.kind == LayerKind.CONV else GemmOp
            stream = _lower_gemm_layer(node, shapes, config, batch, opcode_cls)
    else:
        total_tiles = 0
        if materialize_stream:
            stream = _lower_vector_layer(node, config, batch)
    return CompiledLayer(
        node_index=node.index,
        name=node.name,
        kind=node.kind,
        gemm_shapes=shapes,
        total_tiles=total_tiles,
        out_elems=node.output_spec.elems * batch,
        vector_elems=node.layer.vector_elems(inputs, batch),
        weight_elems=node.layer.weight_elems(inputs),
        macs=node.layer.macs(inputs, batch),
        stream=stream,
    )


def compile_model(
    graph: Graph,
    config: NPUConfig,
    batch: int = 1,
    materialize_streams: bool = False,
) -> CompiledModel:
    """Lower a whole graph for one batch size."""
    if batch <= 0:
        raise ValueError("batch must be positive")
    layers = tuple(
        compile_layer(node, config, batch, materialize_stream=materialize_streams)
        for node in graph
    )
    return CompiledModel(name=graph.name, batch=batch, layers=layers)


def partition_model(
    model: CompiledModel, num_stages: int
) -> Tuple[CompiledModel, ...]:
    """Cut a compiled model into contiguous pipeline-stage submodels.

    Stages are balanced by compiled MAC mass (the same cut rule as
    :meth:`~repro.models.graph.Graph.partition`, applied after lowering so
    sequence-unrolled RNNs partition over their true unrolled layers).
    Each stage is a self-contained :class:`CompiledModel` whose layers
    keep their original ``node_index``, so profiles and stage boundaries
    stay traceable back to the source graph.
    """
    if not model.layers:
        raise ValueError("cannot partition a model with no layers")
    ranges = balanced_partition(
        [layer.macs for layer in model.layers], num_stages
    )
    return tuple(
        CompiledModel(
            name=f"{model.name}@s{index}",
            batch=model.batch,
            layers=model.layers[start:end],
        )
        for index, (start, end) in enumerate(ranges)
    )
