"""Hardware-overhead calculators (Secs VI-F/G)."""

import pytest

from repro.analysis.overhead import (
    CONTEXT_TABLE_FIELDS,
    ContextTableOverhead,
    checkpoint_storage_bytes,
    oversubscription_migration_us,
)


class TestContextTableOverhead:
    def test_paper_numbers(self):
        # Sec VI-F: 448 bits/task; 16 tasks -> 7168 bits -> ~0.01 mm^2.
        overhead = ContextTableOverhead(num_tasks=16)
        assert overhead.bits_per_task == 448
        assert overhead.total_bits == 448 * 16
        assert overhead.area_mm2_32nm == pytest.approx(0.01)

    def test_seven_fields(self):
        assert len(CONTEXT_TABLE_FIELDS) == 7

    def test_scales_linearly(self):
        assert ContextTableOverhead(num_tasks=32).total_bits == 2 * \
            ContextTableOverhead(num_tasks=16).total_bits

    def test_validation(self):
        with pytest.raises(ValueError):
            ContextTableOverhead(num_tasks=0)
        with pytest.raises(ValueError):
            ContextTableOverhead(num_tasks=1, bits_per_field=0)


class TestCheckpointStorage:
    def test_per_model_and_total(self, factory):
        profiles = [
            factory.execution_profile("CNN-AN", 16),
            factory.execution_profile("CNN-GN", 16),
        ]
        storage = checkpoint_storage_bytes(profiles)
        assert set(storage) == {"CNN-AN", "CNN-GN", "TOTAL"}
        assert storage["TOTAL"] == pytest.approx(
            storage["CNN-AN"] + storage["CNN-GN"]
        )

    def test_batch16_worst_case_mbs(self, factory, config):
        # Sec VI-G regime: worst-case checkpoints are MB-scale, bounded by
        # on-chip buffering (UBUF + ACCQ).
        profile = factory.execution_profile("CNN-VN", 16)
        worst = checkpoint_storage_bytes([profile])["CNN-VN"]
        assert 1e6 < worst <= config.ubuf_bytes + config.accq_bytes

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            checkpoint_storage_bytes([])


class TestMigration:
    def test_spill_time_scales(self, config):
        assert oversubscription_migration_us(32e9, config) == pytest.approx(1e6)
        assert oversubscription_migration_us(0, config) == 0.0

    def test_validation(self, config):
        with pytest.raises(ValueError):
            oversubscription_migration_us(-1, config)
        with pytest.raises(ValueError):
            oversubscription_migration_us(1, config, cpu_link_bytes_per_sec=0)
