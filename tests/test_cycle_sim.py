"""Cycle-stepping simulator vs the closed-form engine (our SCALE-Sim
cross-validation, paper Sec III)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.npu.config import NPUConfig
from repro.npu.cycle_sim import simulate_gemm, validate_against_closed_form
from repro.npu.tiling import GemmShape, TilePlan


class TestCycleSimBasics:
    def test_single_tile_makespan(self, config):
        shape = GemmShape(m=128, k=128, n=config.acc_depth)
        result = simulate_gemm(shape, config)
        assert result.tile_count == 1
        # fetch (after latency) then compute, nothing overlaps.
        assert result.total_cycles > config.memory_latency_cycles

    def test_tile_count_matches_plan(self, config):
        shape = GemmShape(m=300, k=200, n=4100)
        result = simulate_gemm(shape, config)
        assert result.tile_count == TilePlan(shape, config).total_tiles

    def test_busy_cycles_below_total(self, config):
        shape = GemmShape(m=256, k=256, n=4096)
        result = simulate_gemm(shape, config)
        assert 0 < result.busy_cycles <= result.total_cycles
        assert 0 < result.compute_utilization <= 1.0

    def test_jobs_are_causally_ordered(self, config):
        shape = GemmShape(m=256, k=256, n=4096)
        result = simulate_gemm(shape, config)
        for prev, cur in zip(result.jobs, result.jobs[1:]):
            assert cur.compute_start >= prev.compute_done or \
                cur.compute_start >= prev.compute_start
            assert cur.compute_start >= cur.fetch_done

    def test_double_buffering_hides_memory(self, config):
        # Steady-state: makespan is far below fetch+compute serialized.
        shape = GemmShape(m=128, k=128, n=20 * config.acc_depth)
        result = simulate_gemm(shape, config)
        serialized = sum(j.fetch_cycles + j.compute_cycles for j in result.jobs)
        assert result.total_cycles < 0.8 * serialized


class TestCrossValidation:
    @pytest.mark.parametrize(
        "shape",
        [
            GemmShape(m=128, k=128, n=2048),      # one inner tile
            GemmShape(m=64, k=27, n=12544),       # conv-like, small m/k
            GemmShape(m=512, k=512, n=12544),     # large conv
            GemmShape(m=4096, k=4096, n=1),       # FC at batch 1
            GemmShape(m=4096, k=1024, n=16),      # LSTM gates at batch 16
            GemmShape(m=1, k=9, n=3136),          # depthwise slice
            GemmShape(m=1000, k=2048, n=4),       # classifier
        ],
    )
    def test_closed_form_within_two_percent(self, config, shape):
        assert validate_against_closed_form(shape, config) < 0.02

    @given(
        m=st.integers(min_value=1, max_value=1024),
        k=st.integers(min_value=1, max_value=1024),
        n=st.integers(min_value=1, max_value=8192),
    )
    @settings(max_examples=30, deadline=None, derandomize=True)
    def test_closed_form_bounded_randomized(self, m, k, n):
        # Narrow-k shapes with many partial tiles diverge up to ~15%
        # (measured worst 14.6% over 8000 random shapes; p99 is 4%), so
        # the sweep guards against gross divergence only -- the named
        # shapes above keep the tight 2% bound.
        config = NPUConfig()
        gap = validate_against_closed_form(GemmShape(m=m, k=k, n=n), config)
        assert gap < 0.20
