#!/usr/bin/env python
"""Latency prediction walkthrough: Algorithm 1 + the seq2seq regressor.

Shows the two halves of PREMA's predictor on real models:

1. the architecture-aware node-level model (Algorithm 1) against the
   ground-truth engine, per benchmark and batch size;
2. the profile-driven sequence-length regressor for the non-linear RNNs,
   including how prediction error flows into the end-to-end estimate.

Run:  python examples/latency_prediction.py
"""

import random

from repro import NPUConfig, Priority, TaskFactory
from repro.workloads.specs import TaskSpec

CNN_CASES = [("CNN-AN", 1), ("CNN-AN", 16), ("CNN-GN", 1), ("CNN-VN", 1),
             ("CNN-VN", 16), ("CNN-MN", 1)]
RNN_CASES = ["RNN-MT1", "RNN-MT2", "RNN-ASR"]


def cnn_accuracy(config: NPUConfig, factory: TaskFactory) -> None:
    print("Algorithm 1 vs ground-truth engine (static-topology networks):")
    print(f"  {'model':8s} {'batch':>5s} {'actual ms':>10s} "
          f"{'predicted ms':>13s} {'error':>7s}")
    for benchmark, batch in CNN_CASES:
        spec = TaskSpec(0, benchmark, batch, Priority.MEDIUM, 0.0)
        actual = factory.isolated_cycles(spec)
        predicted = factory.estimated_cycles(spec)
        print(
            f"  {benchmark:8s} {batch:5d} {config.cycles_to_ms(actual):10.3f} "
            f"{config.cycles_to_ms(predicted):13.3f} "
            f"{(predicted - actual) / actual:+7.1%}"
        )


def rnn_accuracy(config: NPUConfig, factory: TaskFactory, samples: int = 40) -> None:
    print("\nEnd-to-end estimates for dynamic-length RNNs "
          "(error includes the regressor's output-length prediction):")
    rng = random.Random(9)
    print(f"  {'model':8s} {'mean |err|':>11s} {'max |err|':>10s} "
          f"{'corr source':>22s}")
    for benchmark in RNN_CASES:
        profile = factory.profiles[benchmark]
        errors = []
        for _ in range(samples):
            input_len = rng.choice(profile.input_lengths)
            output_len = rng.choice(profile.outputs_for(input_len))
            spec = TaskSpec(0, benchmark, 1, Priority.MEDIUM, 0.0,
                            input_len=input_len, actual_output_len=output_len)
            actual = factory.isolated_cycles(spec)
            predicted = factory.estimated_cycles(spec)
            errors.append(abs(predicted - actual) / actual)
        print(
            f"  {benchmark:8s} {sum(errors) / len(errors):11.1%} "
            f"{max(errors):10.1%} "
            f"{'input->output length table':>22s}"
        )


def regressor_table(factory: TaskFactory) -> None:
    print("\nRegression lookup table for RNN-MT1 (En->De), geomean outputs:")
    regressor = factory.regressors["RNN-MT1"]
    inputs = sorted(regressor.table)
    row_in = "  input len: " + "  ".join(f"{i:4d}" for i in inputs)
    row_out = "  predicted: " + "  ".join(
        f"{regressor.predict(i):4d}" for i in inputs
    )
    print(row_in)
    print(row_out)


def main() -> None:
    config = NPUConfig()
    factory = TaskFactory(config)
    cnn_accuracy(config, factory)
    rnn_accuracy(config, factory)
    regressor_table(factory)


if __name__ == "__main__":
    main()
