"""Experiment harnesses, one module per paper figure/section.

Each module exposes a ``run_*`` function returning structured rows and a
``format_*`` helper the benchmark harness prints.  Experiments accept a
``quick`` knob so the test suite can execute them end-to-end on small
ensembles while the benchmarks regenerate the paper-scale versions.
"""
