"""Multi-NPU node-level scheduling (the paper's Sec II-C future work).

The paper scopes itself to scheduling *after* Kubernetes routes requests
to one NPU and explicitly leaves node-level policy over multiple
preemptible NPUs as future work.  This module implements that layer: a
router dispatches each arriving request to one of N NPUs, each running its
own (policy, preemption-mode) scheduler.

Routing policies:

``ROUND_ROBIN``
    Kubernetes-default rotation, blind to task sizes.
``LEAST_LOADED``
    Predictive routing: the router tracks each device's *estimated*
    backlog using the same Algorithm-1 estimates PREMA uses, and sends
    the request to the device that can start it earliest.  This extends
    the paper's thesis -- the predictor is useful above the device too.
``RANDOM``
    Seeded uniform choice (the load-balancer strawman).

Routing happens in arrival order using only scheduler-visible information
(arrival time + ``Time_estimated``); devices then execute their partitions
independently on the single-NPU simulator.
"""

from __future__ import annotations

import dataclasses
import enum
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sched.policies import make_policy
from repro.sched.simulator import (
    NPUSimulator,
    SimulationConfig,
    SimulationResult,
)
from repro.sched.task import TaskRuntime


class RoutingPolicy(enum.Enum):
    ROUND_ROBIN = "round-robin"
    LEAST_LOADED = "least-loaded"
    RANDOM = "random"


@dataclasses.dataclass(frozen=True)
class ClusterResult:
    """Outcome of one cluster run."""

    tasks: Tuple[TaskRuntime, ...]
    device_results: Tuple[Optional[SimulationResult], ...]
    assignments: Dict[int, int]

    @property
    def num_devices(self) -> int:
        return len(self.device_results)

    @property
    def makespan_cycles(self) -> float:
        return max(
            result.makespan_cycles
            for result in self.device_results
            if result is not None
        )

    def device_utilization(self) -> List[float]:
        """Busy fraction of each device over the cluster makespan."""
        span = self.makespan_cycles
        utilization = []
        for result in self.device_results:
            if result is None or span == 0:
                utilization.append(0.0)
            else:
                utilization.append(result.timeline.busy_cycles() / span)
        return utilization


class ClusterScheduler:
    """Route requests across N preemptible NPUs, then simulate each."""

    def __init__(
        self,
        num_devices: int,
        simulation_config: SimulationConfig,
        policy_name: str = "PREMA",
        routing: RoutingPolicy = RoutingPolicy.LEAST_LOADED,
        seed: int = 0,
    ) -> None:
        if num_devices <= 0:
            raise ValueError("num_devices must be positive")
        self.num_devices = num_devices
        self.simulation_config = simulation_config
        self.policy_name = policy_name
        self.routing = routing
        self._seed = seed

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(self, tasks: Sequence[TaskRuntime]) -> Dict[int, int]:
        """Assign each task to a device, in arrival order.

        Uses only scheduler-visible state: arrival times and the
        Algorithm-1 estimates carried in each task's context row.
        """
        ordered = sorted(tasks, key=lambda t: (t.spec.arrival_cycles, t.task_id))
        assignments: Dict[int, int] = {}
        rng = random.Random(self._seed)
        cursor = 0
        backlog_free_at = [0.0] * self.num_devices
        for task in ordered:
            if self.routing == RoutingPolicy.ROUND_ROBIN:
                device = cursor % self.num_devices
                cursor += 1
            elif self.routing == RoutingPolicy.RANDOM:
                device = rng.randrange(self.num_devices)
            else:
                arrival = task.spec.arrival_cycles
                device = min(
                    range(self.num_devices),
                    key=lambda d: (max(backlog_free_at[d], arrival), d),
                )
            arrival = task.spec.arrival_cycles
            backlog_free_at[device] = (
                max(backlog_free_at[device], arrival)
                + task.context.estimated_cycles
            )
            assignments[task.task_id] = device
        return assignments

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[TaskRuntime]) -> ClusterResult:
        if not tasks:
            raise ValueError("need at least one task")
        assignments = self.route(tasks)
        partitions: List[List[TaskRuntime]] = [
            [] for _ in range(self.num_devices)
        ]
        for task in tasks:
            partitions[assignments[task.task_id]].append(task)
        device_results: List[Optional[SimulationResult]] = []
        for partition in partitions:
            if not partition:
                device_results.append(None)
                continue
            simulator = NPUSimulator(
                self.simulation_config, make_policy(self.policy_name)
            )
            device_results.append(simulator.run(partition))
        return ClusterResult(
            tasks=tuple(tasks),
            device_results=tuple(device_results),
            assignments=assignments,
        )
