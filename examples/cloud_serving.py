#!/usr/bin/env python
"""Cloud MLaaS serving scenario: SLA tiers on one shared NPU -- and an
SLA-aware admission frontend on a small cluster.

Models a Google-Cloud-ML-style service with three pricing tiers (the
paper's Sec I motivation): a latency-critical "online prediction" tenant
(high priority), an interactive tenant (medium), and a "batch prediction"
tenant (low).  Each tier submits an open-loop request stream; the script
reports per-tier p50/p95 latency and SLA attainment under NP-FCFS vs
PREMA, showing how a preemptible NPU protects the paid tier without
stalling the batch tier into starvation.

The second act overloads a 2-NPU cluster with the same tiers tagged as
serving QoS classes and compares the admit-everything frontend against
PCS-style predictive admission with online prediction correction
(`repro.serving`): under overload the admission frontend refuses work it
could never serve in time, and the paid tier's SLA attainment recovers.

The third act keeps the admission frontend and turns on router
batching (`repro.sched.job.BatchConfig`): compatible same-model
requests coalesce into one dispatch, so goodput rises and the frontend
rejects less -- without giving back the interactive tier's attainment.

The fourth act runs that same admission+batching cluster on spot
instances: one of the two NPUs gets revoked mid-trace (with a short
advance warning, `repro.sched.faults`).  Restarting the destroyed work
after the kill is compared against evacuating on the warning
(`proactive_migration=True`): the reactive arm loses a dozen-odd
requests outright, the proactive arm loses none and sustains more
goodput under churn.

Run:  python examples/cloud_serving.py [--trace out.json]

``--trace`` records the final act (proactive migration under spot
churn) with the structured tracer (`repro.obs`) and writes a
Chrome-trace/Perfetto JSON artifact -- open it at
https://ui.perfetto.dev, or summarize it with
``python -m repro.analysis.obs_report out.json`` (see
docs/observability.md).
"""

import argparse
import random

import numpy as np

from repro import (
    NPUConfig,
    NPUSimulator,
    PreemptionMode,
    Priority,
    SimulationConfig,
    TaskFactory,
    make_policy,
)
from repro.workloads.specs import TaskSpec

#: (tier, priority, model served, requests, mean inter-arrival ms).
TIERS = (
    ("online", Priority.HIGH, "CNN-GN", 12, 4.0),
    ("interactive", Priority.MEDIUM, "CNN-AN", 10, 5.0),
    ("batch", Priority.LOW, "CNN-VN", 6, 9.0),
)
#: Per-tier SLA target, as a multiple of isolated latency (Sec VI-C).
SLA_MULTIPLIER = {"online": 2.0, "interactive": 4.0, "batch": 10.0}
#: Serving QoS class per pricing tier (the cluster act's tags).
QOS_FOR_TIER = {"online": "interactive", "interactive": "standard",
                "batch": "batch"}


def build_requests(
    config: NPUConfig, seed: int = 7, scale: int = 1, speedup: float = 1.0
):
    """Per-tier open-loop request streams.

    ``scale`` multiplies each tier's request count and ``speedup``
    divides the inter-arrival gaps -- together they turn the one-NPU
    scenario into the cluster-overload one.
    """
    rng = random.Random(seed)
    specs = []
    for tier, priority, benchmark, count, gap_ms in TIERS:
        clock = 0.0
        for _ in range(count * scale):
            clock += rng.expovariate(
                speedup / config.ms_to_cycles(gap_ms)
            )
            specs.append((tier, TaskSpec(
                task_id=0,  # reassigned below
                benchmark=benchmark,
                batch=1,
                priority=priority,
                arrival_cycles=clock,
            )))
    specs.sort(key=lambda pair: pair[1].arrival_cycles)
    tiers, ordered = [], []
    import dataclasses
    for task_id, (tier, spec) in enumerate(specs):
        tiers.append(tier)
        ordered.append(dataclasses.replace(spec, task_id=task_id))
    return tiers, ordered


def serve(config, factory, specs, policy, mode):
    simulator = NPUSimulator(
        SimulationConfig(npu=config, mode=mode), make_policy(policy)
    )
    tasks = [factory.build_task(spec) for spec in specs]
    simulator.run(tasks)
    return tasks


def report(config, label, tiers, tasks):
    print(f"\n=== {label} ===")
    print(f"  {'tier':12s} {'p50 ms':>8s} {'p95 ms':>8s} {'SLA met':>8s}")
    for tier_name, _, _, _, _ in TIERS:
        selected = [t for tier, t in zip(tiers, tasks) if tier == tier_name]
        latencies = [config.cycles_to_ms(t.turnaround_cycles) for t in selected]
        met = sum(
            1 for t in selected
            if t.turnaround_cycles
            <= SLA_MULTIPLIER[tier_name] * t.isolated_cycles
        )
        print(
            f"  {tier_name:12s} {np.percentile(latencies, 50):8.2f} "
            f"{np.percentile(latencies, 95):8.2f} "
            f"{met}/{len(selected):>4d}"
        )


def serve_cluster(config, factory, specs, admission, batching=None,
                  churn=None, proactive=False, tracer=None):
    """Run the tagged request stream on a 2-NPU cluster."""
    from repro.sched.cluster import (
        ClusterConfig,
        ClusterScheduler,
        RoutingPolicy,
    )
    from repro.sched.metrics import compute_cluster_metrics

    scheduler = ClusterScheduler(
        num_devices=2,
        simulation_config=SimulationConfig(
            npu=config, mode=PreemptionMode.DYNAMIC
        ),
        config=ClusterConfig(
            policy_name="PREMA",
            routing=RoutingPolicy.ONLINE_PREDICTED,
            admission=admission,
            batching=batching,
            churn=churn,
            proactive_migration=proactive,
            tracer=tracer,
        ),
    )
    result = scheduler.run([factory.build_task(spec) for spec in specs])
    return compute_cluster_metrics(result)


def report_cluster(label, metrics, churn=False):
    print(f"\n=== {label} ===")
    print(
        "  class attainment: "
        + "  ".join(
            f"{qos}={rate:.0%}"
            for qos, rate in sorted(metrics.sla_attainment_by_class.items())
        )
    )
    print(
        f"  rejected {metrics.rejection_rate:.0%} of arrivals, "
        f"{metrics.deferral_count} deferrals, goodput "
        f"{metrics.goodput:.2f} NPUs' worth of SLA-met work"
    )
    if metrics.batch_count:
        print(
            f"  {metrics.batch_count} batched dispatches, mean size "
            f"{metrics.mean_batch_size:.1f}"
        )
    if churn:
        print(
            f"  under churn: goodput {metrics.goodput_under_churn:.2f}, "
            f"work lost {metrics.work_lost_cycles / 1e6:.2f} Mcyc, "
            f"{metrics.restarts_per_task:.3f} restarts/task, "
            f"{metrics.lost_task_count} tasks lost"
        )


def main(trace_path: str = None) -> None:
    config = NPUConfig()
    factory = TaskFactory(config)
    tiers, specs = build_requests(config)
    print(f"Serving {len(specs)} requests across {len(TIERS)} pricing tiers")
    for label, policy, mode in (
        ("NP-FCFS (TensorRT-server baseline)", "FCFS", PreemptionMode.NP),
        ("PREMA (preemptible NPU)", "PREMA", PreemptionMode.DYNAMIC),
    ):
        tasks = serve(config, factory, specs, policy, mode)
        report(config, label, tiers, tasks)

    # Act two: the same tiers as QoS classes on an overloaded 2-NPU
    # cluster, admit-everything vs predictive admission + feedback.
    import dataclasses

    from repro.serving import AdmissionController, PredictionFeedback

    print("\nOverloading a 2-NPU cluster with the same tiers (x6 traffic):")
    tiers3, specs3 = build_requests(config, seed=11, scale=6, speedup=6.0)
    tagged = [
        dataclasses.replace(spec, qos=QOS_FOR_TIER[tier])
        for tier, spec in zip(tiers3, specs3)
    ]
    report_cluster(
        "admit-all frontend",
        serve_cluster(config, factory, tagged, admission=None),
    )
    report_cluster(
        "admission + online feedback",
        serve_cluster(
            config, factory, tagged,
            admission=AdmissionController(feedback=PredictionFeedback()),
        ),
    )

    # Act three: same overload, admission kept, plus router batching --
    # compatible same-model requests coalesce into one dispatch (each
    # joining request costs only the marginal fraction of its solo
    # cycles), so the same two NPUs serve more SLA-met work and the
    # frontend no longer has to refuse as much of it.  The window stays
    # short (1 ms) and pairs-only so the latency-critical class keeps
    # its attainment: a longer/deeper window trades it away.
    from repro.sched.job import BatchConfig

    report_cluster(
        "admission + router batching",
        serve_cluster(
            config, factory, tagged,
            admission=AdmissionController(feedback=PredictionFeedback()),
            batching=BatchConfig(
                window_cycles=config.ms_to_cycles(1.0),
                max_batch=2,
                marginal_fraction=0.6,
            ),
        ),
    )

    # Act four: the act-three cluster rented as spot instances.  A
    # revocation schedule (drawn from its own RNG stream, so the
    # arrival trace is untouched) takes one of the two NPUs away
    # mid-trace after a ~0.5 ms warning.  Restart-after-the-kill
    # destroys the revoked NPU's resident work -- a dozen-odd requests
    # simply vanish; evacuating on the warning checkpoints it across
    # the interconnect first, so the proactive arm loses *nothing* and
    # completes more useful work per cycle (goodput under churn).  The
    # rescued requests do finish late -- SLA-met goodput is the price
    # of keeping every request alive on half a cluster.
    from repro.sched.faults import ChurnSchedule

    print("\nSame cluster on spot instances (one NPU revoked mid-trace):")
    horizon = max(spec.arrival_cycles for spec in tagged)
    spot = ChurnSchedule.generate(
        num_devices=2,
        horizon_cycles=horizon,
        seed=0,
        revocation_rate=1.5 / horizon,
        mean_outage_cycles=horizon / 8.0,
        mean_warning_cycles=config.ms_to_cycles(0.5),
    )
    for label, proactive in (
        ("spot churn, reactive restart", False),
        ("spot churn, proactive migration", True),
    ):
        tracer = None
        if trace_path is not None and proactive:
            # Trace the headline arm only; tracing is observational, so
            # the reported metrics are identical with it on or off.
            from repro.obs import Tracer

            tracer = Tracer()
        report_cluster(
            label,
            serve_cluster(
                config, factory, tagged,
                admission=AdmissionController(feedback=PredictionFeedback()),
                batching=BatchConfig(
                    window_cycles=config.ms_to_cycles(1.0),
                    max_batch=2,
                    marginal_fraction=0.6,
                ),
                churn=spot,
                proactive=proactive,
                tracer=tracer,
            ),
            churn=True,
        )
        if tracer is not None:
            tracer.write(trace_path)
            print(
                f"\nwrote {len(tracer)} trace events for '{label}' to "
                f"{trace_path} (open at https://ui.perfetto.dev)"
            )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace", metavar="OUT.json", default=None,
        help="write a Perfetto trace of the final act to this path",
    )
    main(parser.parse_args().trace)
