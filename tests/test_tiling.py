"""Tile decomposition (Fig 3c): counts, extents, coverage invariants."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.npu.config import NPUConfig
from repro.npu.tiling import GemmShape, TilePlan, split_counts


class TestGemmShape:
    def test_macs(self):
        assert GemmShape(m=3, k=5, n=7).macs == 105

    def test_element_counts(self):
        shape = GemmShape(m=3, k=5, n=7)
        assert shape.weight_elems == 15
        assert shape.input_elems == 35
        assert shape.output_elems == 21

    @pytest.mark.parametrize("bad", [dict(m=0, k=1, n=1), dict(m=1, k=-1, n=1),
                                     dict(m=1, k=1, n=0)])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError):
            GemmShape(**bad)


class TestTileCounts:
    def test_exact_fit_single_tile(self, small_config):
        plan = TilePlan(GemmShape(m=4, k=4, n=8), small_config)
        assert plan.total_tiles == 1
        assert plan.n_inner_tiles == 1
        assert plan.n_outer_tiles == 0

    def test_partial_n_makes_outer_tile(self, small_config):
        plan = TilePlan(GemmShape(m=4, k=4, n=9), small_config)
        assert plan.n_tiles == 2
        assert plan.n_inner_tiles == 1
        assert plan.n_outer_tiles == 1
        assert plan.n_remainder == 1

    def test_small_layer_counts_one_tile(self, small_config):
        # Ceil division: layers smaller than the array still take a tile
        # (DESIGN.md deviation #1 vs the paper's floor pseudo-code).
        plan = TilePlan(GemmShape(m=1, k=1, n=1), small_config)
        assert plan.total_tiles == 1

    def test_m_k_tiling(self, small_config):
        plan = TilePlan(GemmShape(m=9, k=5, n=8), small_config)
        assert plan.m_tiles == 3
        assert plan.k_tiles == 2
        assert plan.total_tiles == 6

    def test_tile_count_formula(self, config):
        shape = GemmShape(m=300, k=500, n=5000)
        plan = TilePlan(shape, config)
        assert plan.m_tiles == math.ceil(300 / 128)
        assert plan.k_tiles == math.ceil(500 / 128)
        assert plan.n_tiles == math.ceil(5000 / config.acc_depth)


class TestTileExtents:
    def test_interior_tiles_full(self, small_config):
        plan = TilePlan(GemmShape(m=9, k=5, n=17), small_config)
        tile = plan.tile_at(0, 0, 0)
        assert (tile.sw, tile.sh, tile.acc) == (4, 4, 8)
        assert tile.is_inner

    def test_edge_tiles_partial(self, small_config):
        plan = TilePlan(GemmShape(m=9, k=5, n=17), small_config)
        tile = plan.tile_at(2, 1, 2)
        assert (tile.sw, tile.sh, tile.acc) == (1, 1, 1)
        assert not tile.is_inner

    def test_out_of_range_raises(self, small_config):
        plan = TilePlan(GemmShape(m=4, k=4, n=8), small_config)
        with pytest.raises(IndexError):
            plan.tile_at(1, 0, 0)
        with pytest.raises(IndexError):
            plan.tile_at(0, 1, 0)
        with pytest.raises(IndexError):
            plan.tile_at(0, 0, 1)

    def test_iteration_order_is_weight_stationary(self, small_config):
        plan = TilePlan(GemmShape(m=5, k=5, n=9), small_config)
        tiles = list(plan.tiles())
        assert len(tiles) == plan.total_tiles
        # k (reduction) is innermost so ACCQ accumulates across k steps.
        assert (tiles[0].m_index, tiles[0].n_index, tiles[0].k_index) == (0, 0, 0)
        assert (tiles[1].m_index, tiles[1].n_index, tiles[1].k_index) == (0, 0, 1)


class TestCoverageInvariants:
    @given(
        m=st.integers(min_value=1, max_value=40),
        k=st.integers(min_value=1, max_value=40),
        n=st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=60, deadline=None)
    def test_tiles_cover_exactly_all_macs(self, m, k, n):
        config = NPUConfig(array_width=4, array_height=4, acc_depth=8)
        shape = GemmShape(m=m, k=k, n=n)
        plan = TilePlan(shape, config)
        assert plan.total_macs() == shape.macs

    @given(
        m=st.integers(min_value=1, max_value=40),
        k=st.integers(min_value=1, max_value=40),
        n=st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=60, deadline=None)
    def test_utilization_in_unit_interval(self, m, k, n):
        config = NPUConfig(array_width=4, array_height=4, acc_depth=8)
        plan = TilePlan(GemmShape(m=m, k=k, n=n), config)
        assert 0.0 < plan.utilization() <= 1.0

    @given(
        m=st.integers(min_value=1, max_value=40),
        n=st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_inner_plus_outer_equals_total(self, m, n):
        config = NPUConfig(array_width=4, array_height=4, acc_depth=8)
        plan = TilePlan(GemmShape(m=m, k=12, n=n), config)
        assert plan.n_inner_tiles + plan.n_outer_tiles == plan.total_tiles

    def test_full_utilization_when_exact(self, small_config):
        plan = TilePlan(GemmShape(m=8, k=8, n=16), small_config)
        assert plan.utilization() == pytest.approx(1.0)


class TestSplitCounts:
    def test_exact(self):
        assert split_counts(8, 4) == (2, 0)

    def test_remainder(self):
        assert split_counts(9, 4) == (2, 1)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            split_counts(0, 4)
        with pytest.raises(ValueError):
            split_counts(4, 0)
