"""PREMA policy core: Algorithm 2 grants, candidates, and preemption
recommendations."""

import pytest

from repro.core.context import ContextTable, TaskContext, TaskState
from repro.core.scheduler import PremaPolicyCore, SchedulerConfig
from repro.core.tokens import Priority


def make_row(task_id, priority=Priority.MEDIUM, estimated=1000.0, tokens=None,
             executed=0.0, waited_since_grant=0.0):
    row = TaskContext(
        task_id=task_id,
        priority=priority,
        estimated_cycles=estimated,
        tokens=tokens if tokens is not None else 0.0,
    )
    row.executed_cycles = executed
    row.waited_since_grant = waited_since_grant
    return row


class TestSchedulerConfig:
    def test_table_two_default_period(self, config):
        scheduler = SchedulerConfig()
        assert config.cycles_to_ms(scheduler.period_cycles) == pytest.approx(0.25)

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            SchedulerConfig(period_cycles=0)


class TestPeriodicGrants:
    def test_grant_proportional_to_priority_and_slowdown(self):
        core = PremaPolicyCore()
        table = ContextTable()
        low = make_row(1, Priority.LOW, estimated=100.0, waited_since_grant=200.0)
        high = make_row(2, Priority.HIGH, estimated=100.0, waited_since_grant=200.0)
        table.add(low)
        table.add(high)
        core.grant_periodic_tokens(table)
        # Slowdown_normalized = 200/100 = 2 -> low: 1+2, high: 9+18.
        assert low.tokens == pytest.approx(3.0)
        assert high.tokens == pytest.approx(27.0)

    def test_short_jobs_accumulate_faster(self):
        core = PremaPolicyCore()
        table = ContextTable()
        short = make_row(1, Priority.LOW, estimated=10.0, waited_since_grant=100.0)
        long = make_row(2, Priority.LOW, estimated=1000.0, waited_since_grant=100.0)
        table.add(short)
        table.add(long)
        core.grant_periodic_tokens(table)
        assert short.tokens > long.tokens

    def test_running_tasks_not_granted(self):
        core = PremaPolicyCore()
        table = ContextTable()
        running = make_row(1, waited_since_grant=100.0)
        running.state = TaskState.RUNNING
        table.add(running)
        before = running.tokens
        core.grant_periodic_tokens(table)
        assert running.tokens == before

    def test_grant_resets_waited_since_grant(self):
        core = PremaPolicyCore()
        table = ContextTable()
        row = make_row(1, waited_since_grant=50.0)
        table.add(row)
        core.grant_periodic_tokens(table)
        assert row.waited_since_grant == 0.0


class TestCandidateSelection:
    def test_empty_queue_returns_none(self):
        assert PremaPolicyCore().select_candidate(ContextTable()) is None

    def test_shortest_estimated_job_among_candidates(self):
        core = PremaPolicyCore()
        table = ContextTable()
        table.add(make_row(1, tokens=8.0, estimated=5000.0))
        table.add(make_row(2, tokens=4.0, estimated=100.0))
        table.add(make_row(3, tokens=1.0, estimated=10.0))
        # max=8 -> threshold 3 -> candidates {1, 2}; task 3's tiny job is
        # excluded; task 2 is shortest among candidates.
        chosen = core.select_candidate(table)
        assert chosen.task_id == 2

    def test_remaining_time_drives_selection(self):
        core = PremaPolicyCore()
        table = ContextTable()
        table.add(make_row(1, tokens=8.0, estimated=5000.0, executed=4950.0))
        table.add(make_row(2, tokens=8.0, estimated=100.0))
        # Task 1 has only 50 cycles left -> shortest remaining.
        assert core.select_candidate(table).task_id == 1

    def test_tie_breaks_by_task_id(self):
        core = PremaPolicyCore()
        table = ContextTable()
        table.add(make_row(5, tokens=8.0, estimated=100.0))
        table.add(make_row(2, tokens=8.0, estimated=100.0))
        assert core.select_candidate(table).task_id == 2

    def test_single_task_selected(self):
        core = PremaPolicyCore()
        table = ContextTable()
        table.add(make_row(4, tokens=1.0, estimated=10.0))
        assert core.select_candidate(table).task_id == 4


class TestPreemptionRecommendation:
    def test_running_below_threshold_preempted(self):
        core = PremaPolicyCore()
        running = make_row(1, tokens=1.0, estimated=1000.0)
        candidate = make_row(2, tokens=10.0, estimated=5000.0)
        assert core.should_preempt(candidate, running, [candidate])

    def test_running_candidate_keeps_npu_when_shorter(self):
        core = PremaPolicyCore()
        running = make_row(1, tokens=9.0, estimated=100.0)
        candidate = make_row(2, tokens=9.0, estimated=5000.0)
        assert not core.should_preempt(candidate, running, [candidate])

    def test_shorter_candidate_preempts_peer(self):
        core = PremaPolicyCore()
        running = make_row(1, tokens=9.0, estimated=5000.0)
        candidate = make_row(2, tokens=9.0, estimated=100.0)
        assert core.should_preempt(candidate, running, [candidate])
