"""Shared benchmark fixtures.

The figure benches reuse one NPU config, one task factory (compilation
caches shared across benches) and one paper-scale workload ensemble
(25 random 8-task workloads, Sec VI).  Regenerated tables are written to
``benchmarks/results/`` and printed, so they survive in bench logs.
"""

import pathlib

import pytest

from repro.npu.config import NPUConfig
from repro.sched.prepare import TaskFactory
from repro.workloads.generator import WorkloadGenerator

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def config() -> NPUConfig:
    return NPUConfig()


@pytest.fixture(scope="session")
def factory(config: NPUConfig) -> TaskFactory:
    return TaskFactory(config)


@pytest.fixture(scope="session")
def workloads():
    """The paper-scale ensemble: 25 simulation runs of 8-task workloads."""
    return WorkloadGenerator(seed=11).generate_many(25, num_tasks=8)


@pytest.fixture(scope="session")
def emit():
    """Write a regenerated table to results/<name>.txt and print it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _emit
