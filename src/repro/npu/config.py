"""NPU configuration (paper Table I).

All simulation code measures durations in *cycles* of the PE clock and data
in *bytes*.  The configuration owns every unit conversion so the rest of the
code base never hard-codes frequencies or data widths.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class NPUConfig:
    """Parameters of the baseline systolic-array NPU.

    Defaults reproduce Table I of the paper.  ``acc_depth`` (the accumulator
    queue depth, i.e. how many output columns a single ``GEMM_OP`` produces
    per weight tile) is not listed in Table I; we default to a TPU-v1-like
    2048 entries (see DESIGN.md, deviation #5).
    """

    #: Systolic array width (SW): number of PE columns = output rows per tile.
    array_width: int = 128
    #: Systolic array height (SH): number of PE rows = reduction depth per tile.
    array_height: int = 128
    #: Accumulator queue depth (ACC): output columns produced per GEMM_OP.
    acc_depth: int = 2048
    #: PE clock frequency in Hz.
    frequency_hz: float = 700e6
    #: On-chip SRAM for activations (UBUF), bytes.
    ubuf_bytes: int = 8 * 1024 * 1024
    #: On-chip SRAM for weights (weight buffer), bytes.
    wbuf_bytes: int = 4 * 1024 * 1024
    #: Number of DRAM channels.
    memory_channels: int = 8
    #: Aggregate off-chip memory bandwidth, bytes/second.
    memory_bandwidth_bytes_per_sec: float = 358e9
    #: DRAM access latency, cycles.
    memory_latency_cycles: int = 100
    #: Data width of weights/activations, bytes (16-bit).
    data_bytes: int = 2
    #: Data width of partial sums in the accumulator queue, bytes (32-bit).
    accum_bytes: int = 4
    #: Vector unit lanes (elements processed per cycle by VECTOR_OP).
    vector_lanes: int = 128
    #: Fixed cycles for the preemption trap routine (drain pipeline, vector
    #: state, bookkeeping) before the checkpoint DMA starts.
    preemption_trap_cycles: int = 1000

    def __post_init__(self) -> None:
        positive_fields = (
            "array_width",
            "array_height",
            "acc_depth",
            "frequency_hz",
            "ubuf_bytes",
            "wbuf_bytes",
            "memory_channels",
            "memory_bandwidth_bytes_per_sec",
            "data_bytes",
            "accum_bytes",
            "vector_lanes",
        )
        for name in positive_fields:
            if getattr(self, name) <= 0:
                raise ValueError(f"NPUConfig.{name} must be positive")
        if self.memory_latency_cycles < 0:
            raise ValueError("NPUConfig.memory_latency_cycles must be >= 0")
        if self.preemption_trap_cycles < 0:
            raise ValueError("NPUConfig.preemption_trap_cycles must be >= 0")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def bandwidth_bytes_per_cycle(self) -> float:
        """Off-chip bandwidth expressed in bytes per PE clock cycle."""
        return self.memory_bandwidth_bytes_per_sec / self.frequency_hz

    @property
    def peak_macs_per_cycle(self) -> int:
        """MAC throughput of the fully-utilized systolic array."""
        return self.array_width * self.array_height

    @property
    def accq_bytes(self) -> int:
        """Accumulator queue capacity in bytes (one output tile of partials)."""
        return self.array_width * self.acc_depth * self.accum_bytes

    @property
    def weight_tile_elems(self) -> int:
        """Elements in one full weight tile (SH x SW)."""
        return self.array_height * self.array_width

    @property
    def activation_tile_elems(self) -> int:
        """Elements in one full input-activation tile (SH x ACC)."""
        return self.array_height * self.acc_depth

    @property
    def output_tile_elems(self) -> int:
        """Elements in one full output-activation tile (SW x ACC)."""
        return self.array_width * self.acc_depth

    # ------------------------------------------------------------------
    # Unit conversions
    # ------------------------------------------------------------------
    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.frequency_hz

    def cycles_to_us(self, cycles: float) -> float:
        return cycles / self.frequency_hz * 1e6

    def cycles_to_ms(self, cycles: float) -> float:
        return cycles / self.frequency_hz * 1e3

    def seconds_to_cycles(self, seconds: float) -> float:
        return seconds * self.frequency_hz

    def us_to_cycles(self, us: float) -> float:
        return us * 1e-6 * self.frequency_hz

    def ms_to_cycles(self, ms: float) -> float:
        return ms * 1e-3 * self.frequency_hz


#: The paper's Table I configuration, shared as a module-level default so
#: experiments and tests agree on one instance.
DEFAULT_CONFIG = NPUConfig()
