"""Property-based invariants across the whole scheduling stack.

Hypothesis drives randomized workloads and scheduler configurations
through the simulator; the properties below must hold for *every* policy,
mode, and mechanism:

- completeness: every dispatched task finishes;
- causality: no completion before arrival + isolated time;
- exclusivity: busy timeline segments never overlap;
- conservation: run time equals total work (plus re-execution under KILL);
- metric sanity: NTT >= 1, 0 < STP <= n, fairness in (0, 1].
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.npu.config import NPUConfig
from repro.sched.metrics import compute_metrics
from repro.sched.policies import POLICY_NAMES, make_policy
from repro.sched.prepare import TaskFactory
from repro.sched.simulator import NPUSimulator, PreemptionMode, SimulationConfig
from repro.workloads.generator import WorkloadGenerator

_CONFIG = NPUConfig()
_FACTORY = TaskFactory(_CONFIG)

_scheduler_setups = st.sampled_from([
    ("FCFS", PreemptionMode.NP, "CHECKPOINT"),
    ("RRB", PreemptionMode.NP, "CHECKPOINT"),
    ("HPF", PreemptionMode.NP, "CHECKPOINT"),
    ("HPF", PreemptionMode.STATIC, "CHECKPOINT"),
    ("HPF", PreemptionMode.STATIC, "KILL"),
    ("TOKEN", PreemptionMode.STATIC, "CHECKPOINT"),
    ("SJF", PreemptionMode.STATIC, "CHECKPOINT"),
    ("SJF", PreemptionMode.DYNAMIC, "CHECKPOINT"),
    ("PREMA", PreemptionMode.STATIC, "CHECKPOINT"),
    ("PREMA", PreemptionMode.DYNAMIC, "CHECKPOINT"),
    ("PREMA", PreemptionMode.DYNAMIC, "KILL"),
])


def _run(seed, num_tasks, policy, mode, mechanism, window_ms=8.0):
    workload = WorkloadGenerator(
        seed=seed,
        arrival_window_cycles=_CONFIG.ms_to_cycles(window_ms),
        batch_choices=(1, 4),
    ).generate(num_tasks=num_tasks)
    simulator = NPUSimulator(
        SimulationConfig(npu=_CONFIG, mode=mode, mechanism=mechanism),
        make_policy(policy),
    )
    tasks = _FACTORY.build_workload(workload)
    return simulator.run(tasks)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_tasks=st.integers(min_value=1, max_value=7),
    setup=_scheduler_setups,
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_every_schedule_is_complete_and_causal(seed, num_tasks, setup):
    policy, mode, mechanism = setup
    result = _run(seed, num_tasks, policy, mode, mechanism)
    assert all(task.is_done for task in result.tasks)
    for task in result.tasks:
        # Causality: completion no earlier than arrival + the work itself.
        assert task.completion_time >= (
            task.spec.arrival_cycles + task.isolated_cycles * 0.999
        )
        assert task.normalized_turnaround >= 0.999


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_tasks=st.integers(min_value=2, max_value=7),
    setup=_scheduler_setups,
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_timeline_exclusive_and_conservative(seed, num_tasks, setup):
    policy, mode, mechanism = setup
    result = _run(seed, num_tasks, policy, mode, mechanism)
    result.timeline.verify_no_overlap()
    by_task = result.timeline.run_cycles_by_task()
    for task in result.tasks:
        ran = by_task[task.task_id]
        if mechanism == "KILL":
            # Re-execution may repeat work, never skip it.
            assert ran >= task.isolated_cycles * 0.999
        else:
            assert ran == pytest.approx(task.isolated_cycles, rel=1e-6)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_tasks=st.integers(min_value=2, max_value=7),
    setup=_scheduler_setups,
)
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_metrics_are_sane(seed, num_tasks, setup):
    policy, mode, mechanism = setup
    result = _run(seed, num_tasks, policy, mode, mechanism)
    metrics = compute_metrics(result.tasks)
    assert metrics.antt >= 0.999
    assert 0.0 < metrics.stp <= num_tasks + 1e-9
    assert 0.0 < metrics.fairness <= 1.0 + 1e-9
    for ntt in metrics.ntt_by_task.values():
        assert ntt >= 0.999


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_nonpreemptive_policies_never_preempt(seed):
    for policy in POLICY_NAMES:
        result = _run(seed, 4, policy, PreemptionMode.NP, "CHECKPOINT")
        assert result.preemption_count == 0


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_tasks=st.integers(min_value=2, max_value=6),
)
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_checkpoint_never_slower_in_total_work_than_kill(seed, num_tasks):
    """KILL may redo work; CHECKPOINT never does, so the NPU's total busy
    run time under CHECKPOINT is a lower bound of KILL's."""
    ckpt = _run(seed, num_tasks, "HPF", PreemptionMode.STATIC, "CHECKPOINT")
    kill = _run(seed, num_tasks, "HPF", PreemptionMode.STATIC, "KILL")
    ckpt_work = sum(ckpt.timeline.run_cycles_by_task().values())
    kill_work = sum(kill.timeline.run_cycles_by_task().values())
    assert kill_work >= ckpt_work * 0.999


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_tasks=st.integers(min_value=2, max_value=6),
)
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_oracle_estimates_never_hurt_determinism(seed, num_tasks):
    """Oracle-estimated PREMA runs are valid schedules too (Sec VI-D)."""
    workload = WorkloadGenerator(seed=seed).generate(num_tasks=num_tasks)
    simulator = NPUSimulator(
        SimulationConfig(npu=_CONFIG, mode=PreemptionMode.DYNAMIC),
        make_policy("PREMA"),
    )
    tasks = _FACTORY.build_workload(workload, oracle=True)
    result = simulator.run(tasks)
    assert all(task.is_done for task in result.tasks)
    result.timeline.verify_no_overlap()
