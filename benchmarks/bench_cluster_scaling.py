"""Extension bench: multi-NPU node-level scheduling (Sec II-C future work)."""

from repro.analysis.experiments.cluster_scaling import (
    format_cluster_scaling,
    run_cluster_scaling,
)


def test_cluster_scaling(benchmark, config, factory, emit):
    rows = benchmark.pedantic(
        run_cluster_scaling,
        kwargs=dict(config=config, factory=factory, num_tasks=24,
                    num_workloads=4),
        rounds=1,
        iterations=1,
    )
    emit("cluster_scaling", format_cluster_scaling(rows))
    by_key = {(r.num_devices, r.routing, r.device_policy): r for r in rows}
    # PREMA devices beat NP-FCFS devices at every cluster size, and
    # predictive routing never loses to round-robin for PREMA devices.
    for devices in (1, 2, 4):
        assert by_key[(devices, "least-loaded", "PREMA")].antt <= \
            by_key[(devices, "least-loaded", "FCFS")].antt
    assert by_key[(4, "least-loaded", "PREMA")].antt <= \
        by_key[(4, "round-robin", "PREMA")].antt * 1.05
    # Scaling out helps: 4 devices strictly beat 1 on ANTT.
    assert by_key[(4, "least-loaded", "PREMA")].antt < \
        by_key[(1, "least-loaded", "PREMA")].antt
