"""Golden equivalence of the optimized scheduler hot path.

``tests/data/golden_hotpath.json.gz`` was captured from the
pre-optimization event loop (O(n)-per-event ready scans, eager wait
accrual).  These tests replay the identical sweep -- 25 seeded workloads
x (policy x mode x mechanism) on one NPU plus 25 workloads x routing on
a 4-device cluster -- and require the optimized loop to reproduce it:

- behavioral fields (completion/first-dispatch times, timeline digests,
  preemption/kill/drain counters, checkpoint bytes, makespans,
  placements, migrations) **bit-for-bit**;
- accounting fields (waited cycles, tokens) to 1e-9 relative tolerance,
  because lazy settlement legally re-associates the same IEEE-754 sums
  (see helpers_golden for why a flipped scheduling decision cannot hide
  there: it would shift the behavioral fields).
"""

import math

import pytest

import helpers_golden


@pytest.fixture(scope="module")
def goldens():
    assert helpers_golden.GOLDEN_PATH.exists(), (
        "golden file missing; regenerate from the pre-optimization "
        "commit via: python tests/capture_hotpath_goldens.py"
    )
    return helpers_golden.load_goldens()["runs"]


def _assert_tasks_match(key, expected_tasks, actual_tasks):
    assert actual_tasks.keys() == expected_tasks.keys(), key
    for task_id, expected in expected_tasks.items():
        actual = actual_tasks[task_id]
        for field, value in expected.items():
            got = actual[field]
            if field in helpers_golden.TOLERANT_TASK_FIELDS:
                reference = float.fromhex(value)
                measured = float.fromhex(got)
                assert math.isclose(
                    measured,
                    reference,
                    rel_tol=helpers_golden.RELATIVE_TOLERANCE,
                    abs_tol=1e-6,
                ), f"{key}: task {task_id} {field}: {measured} != {reference}"
            else:
                assert got == value, (
                    f"{key}: task {task_id} {field}: {got} != {value}"
                )


def _assert_result_match(key, expected, actual):
    for field in ("makespan", "preemption_count", "drain_decisions",
                  "timeline"):
        assert actual[field] == expected[field], (
            f"{key}: {field}: {actual[field]} != {expected[field]}"
        )
    _assert_tasks_match(key, expected["tasks"], actual["tasks"])


def _assert_cluster_match(key, expected, actual):
    assert actual["assignments"] == expected["assignments"], key
    assert actual["migrations"] == expected["migrations"], key
    assert actual["makespan"] == expected["makespan"], key
    _assert_tasks_match(key, expected["tasks"], actual["tasks"])
    assert len(actual["devices"]) == len(expected["devices"]), key
    for index, expected_device in enumerate(expected["devices"]):
        actual_device = actual["devices"][index]
        if expected_device is None:
            assert actual_device is None, f"{key}: device {index}"
        else:
            _assert_result_match(
                f"{key}/device{index}", expected_device, actual_device
            )


def test_single_npu_sweep_matches_goldens(goldens, factory):
    seen = 0
    for key, actual in helpers_golden.single_npu_runs(factory):
        assert key in goldens, f"golden missing for {key}"
        _assert_result_match(key, goldens[key], actual)
        seen += 1
    expected_count = sum(1 for key in goldens if key.startswith("single/"))
    assert seen == expected_count


def test_cluster_sweep_matches_goldens(goldens, factory):
    seen = 0
    for key, actual in helpers_golden.cluster_runs(factory):
        assert key in goldens, f"golden missing for {key}"
        _assert_cluster_match(key, goldens[key], actual)
        seen += 1
    expected_count = sum(1 for key in goldens if key.startswith("cluster/"))
    assert seen == expected_count


def test_sweep_covers_every_dimension(goldens):
    """The golden sweep spans every policy, mode, mechanism, and routing."""
    policies, modes, mechanisms, routings = set(), set(), set(), set()
    for key in goldens:
        parts = key.split("/")
        if parts[0] == "single":
            _, _, policy, mode, mechanism = parts
        else:
            _, _, routing, policy, mode, mechanism = parts
            routings.add(routing)
        policies.add(policy)
        modes.add(mode)
        mechanisms.add(mechanism)
    assert policies == set(helpers_golden.POLICY_NAMES)
    assert modes == {"np", "static", "dynamic"}
    assert mechanisms == {"CHECKPOINT", "KILL"}
    assert routings == {r.value for r in helpers_golden.ROUTINGS}
