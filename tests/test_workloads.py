"""Workload specs and the random workload generator (Sec III)."""

import pytest

from repro.core.tokens import Priority
from repro.models.zoo import BENCHMARKS, is_rnn
from repro.workloads.generator import WorkloadGenerator, default_profiles
from repro.workloads.specs import TaskSpec, WorkloadSpec


class TestTaskSpec:
    def test_is_rnn_flag(self):
        cnn = TaskSpec(0, "CNN-AN", 1, Priority.LOW, 0.0)
        rnn = TaskSpec(1, "RNN-MT1", 1, Priority.LOW, 0.0,
                       input_len=10, actual_output_len=12)
        assert not cnn.is_rnn
        assert rnn.is_rnn

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(task_id=-1),
            dict(batch=0),
            dict(arrival_cycles=-1.0),
            dict(input_len=0),
            dict(actual_output_len=0),
        ],
    )
    def test_validation(self, kwargs):
        base = dict(task_id=0, benchmark="CNN-AN", batch=1,
                    priority=Priority.LOW, arrival_cycles=0.0)
        base.update(kwargs)
        with pytest.raises(ValueError):
            TaskSpec(**base)


class TestWorkloadSpec:
    def test_requires_sorted_arrivals(self):
        tasks = (
            TaskSpec(0, "CNN-AN", 1, Priority.LOW, 100.0),
            TaskSpec(1, "CNN-GN", 1, Priority.LOW, 50.0),
        )
        with pytest.raises(ValueError):
            WorkloadSpec(name="w", tasks=tasks)

    def test_requires_unique_ids(self):
        tasks = (
            TaskSpec(0, "CNN-AN", 1, Priority.LOW, 0.0),
            TaskSpec(0, "CNN-GN", 1, Priority.LOW, 10.0),
        )
        with pytest.raises(ValueError):
            WorkloadSpec(name="w", tasks=tasks)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="w", tasks=())

    def test_len_and_benchmarks(self):
        tasks = (
            TaskSpec(0, "CNN-AN", 1, Priority.LOW, 0.0),
            TaskSpec(1, "CNN-GN", 1, Priority.LOW, 10.0),
        )
        workload = WorkloadSpec(name="w", tasks=tasks)
        assert len(workload) == 2
        assert workload.benchmarks == ("CNN-AN", "CNN-GN")


class TestGenerator:
    def test_deterministic_by_seed(self):
        a = WorkloadGenerator(seed=5).generate(num_tasks=8)
        b = WorkloadGenerator(seed=5).generate(num_tasks=8)
        assert a.tasks == b.tasks

    def test_different_seeds_differ(self):
        a = WorkloadGenerator(seed=5).generate(num_tasks=8)
        b = WorkloadGenerator(seed=6).generate(num_tasks=8)
        assert a.tasks != b.tasks

    def test_task_count_and_id_order(self):
        workload = WorkloadGenerator(seed=1).generate(num_tasks=12)
        assert len(workload) == 12
        assert [t.task_id for t in workload.tasks] == list(range(12))

    def test_arrivals_within_window(self):
        window = 1000.0
        gen = WorkloadGenerator(seed=2, arrival_window_cycles=window)
        workload = gen.generate(num_tasks=20)
        assert all(0 <= t.arrival_cycles <= window for t in workload.tasks)

    def test_benchmarks_from_registry(self):
        workload = WorkloadGenerator(seed=3).generate(num_tasks=30)
        assert set(workload.benchmarks) <= set(BENCHMARKS)

    def test_priorities_from_three_levels(self):
        workload = WorkloadGenerator(seed=4).generate(num_tasks=40)
        priorities = {t.priority for t in workload.tasks}
        assert priorities <= {Priority.LOW, Priority.MEDIUM, Priority.HIGH}
        assert len(priorities) > 1

    def test_batches_from_choices(self):
        gen = WorkloadGenerator(seed=5, batch_choices=(4,))
        workload = gen.generate(num_tasks=10)
        assert all(t.batch == 4 for t in workload.tasks)

    def test_rnn_tasks_have_lengths(self):
        workload = WorkloadGenerator(seed=6).generate(num_tasks=40)
        for task in workload.tasks:
            if is_rnn(task.benchmark):
                assert task.input_len is not None
                assert task.actual_output_len is not None
            else:
                assert task.input_len is None

    def test_rnn_sa_is_linear(self):
        workload = WorkloadGenerator(seed=7).generate(num_tasks=60)
        for task in workload.tasks:
            if task.benchmark == "RNN-SA":
                assert task.actual_output_len == task.input_len

    def test_output_lengths_come_from_profile(self):
        profiles = default_profiles(num_samples=300)
        gen = WorkloadGenerator(seed=8, profiles=profiles)
        workload = gen.generate(num_tasks=60)
        for task in workload.tasks:
            if task.benchmark in ("RNN-MT1", "RNN-MT2", "RNN-ASR"):
                outs = profiles[task.benchmark].outputs_for(task.input_len)
                assert task.actual_output_len in outs

    def test_generate_many(self):
        workloads = WorkloadGenerator(seed=9).generate_many(5, num_tasks=4)
        assert len(workloads) == 5
        assert len({w.name for w in workloads}) == 5

    def test_default_profiles_cached_per_key(self):
        # lru_cache: repeated construction must reuse the same profile
        # dict instead of regenerating 8 x 1500-sample sequences.
        assert default_profiles() is default_profiles()
        assert default_profiles(num_samples=300) is \
            default_profiles(num_samples=300)
        assert default_profiles(num_samples=300) is not default_profiles()
        assert WorkloadGenerator(seed=1).profiles is \
            WorkloadGenerator(seed=2).profiles

    @pytest.mark.parametrize("kwargs", [
        dict(benchmarks=()),
        dict(batch_choices=()),
        dict(batch_choices=(0,)),
        dict(arrival_window_cycles=-1.0),
    ])
    def test_constructor_validation(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadGenerator(seed=0, **kwargs)

    def test_generate_validation(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(seed=0).generate(num_tasks=0)
        with pytest.raises(ValueError):
            WorkloadGenerator(seed=0).generate_many(0)
