"""Preemption mechanisms: KILL, CHECKPOINT, DRAIN (paper Sec IV).

Each mechanism answers three questions for a preemption request arriving
while a task is ``offset`` cycles into its execution profile:

- *boundary*: at which network offset can the switch actually happen
  (GEMM_OP instructions are atomic, so the request rounds up to the next
  tile boundary);
- *preemption latency*: cycles between the boundary and the preempting
  task being able to start (checkpoint DMA for CHECKPOINT, zero for KILL,
  undefined for DRAIN which never switches early);
- *what the preempted task keeps*: its progress (CHECKPOINT), nothing
  (KILL), or everything (DRAIN runs to completion).
"""

from __future__ import annotations

import dataclasses

from repro.npu.config import NPUConfig
from repro.npu.engine import ExecutionProfile
from repro.npu.memory import MemorySystem


@dataclasses.dataclass(frozen=True)
class PreemptionOutcome:
    """Result of applying a mechanism to a running task at some offset."""

    #: Network offset (cycles from task start) where the switch happens.
    boundary_offset: float
    #: Cycles from the boundary until the NPU is free for the preemptor.
    preemption_latency: float
    #: Progress (cycles of the profile) the preempted task retains.
    retained_offset: float
    #: Bytes checkpointed to DRAM (0 for KILL/DRAIN).
    checkpoint_bytes: float
    #: Cycles the preempted task must spend restoring state when resumed.
    restore_latency: float
    #: True when the mechanism refuses to switch before task completion.
    drains_to_completion: bool = False


class PreemptionMechanism:
    """Interface shared by the three mechanisms."""

    name: str = "abstract"

    def __init__(self, config: NPUConfig) -> None:
        self.config = config
        self.memory = MemorySystem(config)

    def preempt(self, profile: ExecutionProfile, offset: float) -> PreemptionOutcome:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class KillMechanism(PreemptionMechanism):
    """Immediately terminate: zero latency, all progress wasted (Sec IV-C).

    The preempted inference restarts from scratch when rescheduled.
    """

    name = "KILL"

    def preempt(self, profile: ExecutionProfile, offset: float) -> PreemptionOutcome:
        boundary = profile.next_preemption_point(offset)
        return PreemptionOutcome(
            boundary_offset=boundary,
            preemption_latency=0.0,
            retained_offset=0.0,
            checkpoint_bytes=0.0,
            restore_latency=0.0,
        )


class CheckpointMechanism(PreemptionMechanism):
    """Checkpoint the live context to DRAM via the trap routine (Sec IV-C).

    Latency = trap overhead + DMA of the distinct context state (output
    activations resident in UBUF plus the in-flight ACCQ tile).  Resuming
    later pays the symmetric restore DMA.
    """

    name = "CHECKPOINT"

    def checkpoint_bytes(self, profile: ExecutionProfile, boundary: float) -> float:
        return profile.checkpoint_bytes_at(boundary)

    def preempt(self, profile: ExecutionProfile, offset: float) -> PreemptionOutcome:
        boundary = profile.next_preemption_point(offset)
        num_bytes = self.checkpoint_bytes(profile, boundary)
        dma = self.memory.transfer_cycles(num_bytes)
        latency = self.config.preemption_trap_cycles + dma
        return PreemptionOutcome(
            boundary_offset=boundary,
            preemption_latency=latency,
            retained_offset=boundary,
            checkpoint_bytes=num_bytes,
            restore_latency=self.memory.transfer_cycles(num_bytes),
        )


class DrainMechanism(PreemptionMechanism):
    """Let the running task finish the whole network first (Sec IV-C).

    Zero preemption latency and zero wasted work, but the preemptor waits
    for the remaining network-wide computation.
    """

    name = "DRAIN"

    def preempt(self, profile: ExecutionProfile, offset: float) -> PreemptionOutcome:
        return PreemptionOutcome(
            boundary_offset=profile.total_cycles,
            preemption_latency=0.0,
            retained_offset=profile.total_cycles,
            checkpoint_bytes=0.0,
            restore_latency=0.0,
            drains_to_completion=True,
        )


_MECHANISMS = {
    "KILL": KillMechanism,
    "CHECKPOINT": CheckpointMechanism,
    "DRAIN": DrainMechanism,
}


def mechanism_by_name(name: str, config: NPUConfig) -> PreemptionMechanism:
    """Instantiate a mechanism from its paper name (case-insensitive)."""
    cls = _MECHANISMS.get(name.upper())
    if cls is None:
        raise KeyError(f"unknown mechanism {name!r}; known: {sorted(_MECHANISMS)}")
    return cls(config)
