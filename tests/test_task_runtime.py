"""TaskRuntime progress accounting and preempt/resume conservation."""

import pytest

from repro.core.tokens import Priority
from repro.workloads.specs import TaskSpec


@pytest.fixture()
def task(factory):
    spec = TaskSpec(
        task_id=0,
        benchmark="CNN-AN",
        batch=1,
        priority=Priority.MEDIUM,
        arrival_cycles=1000.0,
    )
    return factory.build_task(spec)


class TestDispatch:
    def test_completion_time_is_now_plus_remaining(self, task):
        done_at = task.dispatch(5000.0)
        assert done_at == pytest.approx(5000.0 + task.profile.total_cycles)

    def test_double_dispatch_raises(self, task):
        task.dispatch(0.0)
        with pytest.raises(RuntimeError):
            task.dispatch(10.0)

    def test_first_dispatch_recorded_once(self, task):
        task.dispatch(100.0)
        task.record_preemption(200.0, 150.0, 0.0, 0.0, killed=False)
        task.dispatch(400.0)
        assert task.first_dispatch_time == 100.0


class TestProgress:
    def test_progress_zero_before_start(self, task):
        assert task.progress_at(0.0) == 0.0

    def test_progress_linear_after_dispatch(self, task):
        task.dispatch(100.0)
        assert task.progress_at(100.0 + 500.0) == pytest.approx(500.0)

    def test_restore_phase_makes_no_progress(self, task):
        task.dispatch(0.0)
        task.record_preemption(1000.0, 1000.0, 300.0, 100.0, killed=False)
        task.dispatch(2000.0)
        # During the 300-cycle restore, progress stays at the retained 1000.
        assert task.progress_at(2100.0) == pytest.approx(1000.0)
        assert task.progress_at(2300.0 + 50.0) == pytest.approx(1050.0)

    def test_progress_capped_at_total(self, task):
        task.dispatch(0.0)
        assert task.progress_at(1e12) == task.profile.total_cycles

    def test_wall_time_at_offset_inverts_progress(self, task):
        task.dispatch(0.0)
        task.record_preemption(1000.0, 1000.0, 300.0, 0.0, killed=False)
        task.dispatch(2000.0)
        wall = task.wall_time_at_offset(1500.0)
        assert task.progress_at(wall) == pytest.approx(1500.0)

    def test_wall_time_rejects_earlier_offset(self, task):
        task.dispatch(0.0)
        task.record_preemption(1000.0, 1000.0, 0.0, 0.0, killed=False)
        task.dispatch(2000.0)
        with pytest.raises(ValueError):
            task.wall_time_at_offset(500.0)


class TestPreemptResumeConservation:
    def test_checkpoint_retains_progress(self, task):
        task.dispatch(0.0)
        task.record_preemption(
            now=700.0, retained_offset=700.0, restore_latency=120.0,
            checkpoint_bytes=4096.0, killed=False,
        )
        assert task.retained_offset == 700.0
        assert task.restore_pending == 120.0
        assert task.remaining_cycles == pytest.approx(
            task.profile.total_cycles - 700.0
        )
        assert task.preemption_count == 1
        assert task.kill_count == 0
        assert task.checkpointed_bytes_total == 4096.0

    def test_kill_loses_progress(self, task):
        task.dispatch(0.0)
        task.record_preemption(
            now=700.0, retained_offset=0.0, restore_latency=0.0,
            checkpoint_bytes=0.0, killed=True,
        )
        assert task.retained_offset == 0.0
        assert task.wasted_cycles == pytest.approx(700.0)
        assert task.kill_count == 1

    def test_executed_plus_remaining_is_total(self, task):
        task.dispatch(0.0)
        task.record_preemption(500.0, 500.0, 0.0, 0.0, killed=False)
        assert task.retained_offset + task.remaining_cycles == pytest.approx(
            task.profile.total_cycles
        )

    def test_preempt_idle_task_raises(self, task):
        with pytest.raises(RuntimeError):
            task.record_preemption(0.0, 0.0, 0.0, 0.0, killed=False)


class TestCompletion:
    def test_complete_sets_metrics(self, task):
        task.dispatch(2000.0)
        done_at = 2000.0 + task.profile.total_cycles
        task.complete(done_at)
        assert task.is_done
        assert task.turnaround_cycles == pytest.approx(done_at - 1000.0)
        assert task.normalized_turnaround >= 1.0

    def test_complete_idle_raises(self, task):
        with pytest.raises(RuntimeError):
            task.complete(100.0)

    def test_turnaround_before_completion_raises(self, task):
        with pytest.raises(RuntimeError):
            _ = task.turnaround_cycles

    def test_dispatch_after_completion_raises(self, task):
        task.dispatch(2000.0)
        task.complete(3000.0 + task.profile.total_cycles)
        with pytest.raises(RuntimeError):
            task.dispatch(1e9)
