"""Execution timeline recording (the paper's Fig 2-style traces).

The simulator records one :class:`Segment` per contiguous span of NPU
activity.  Timelines back the scheduling-invariant tests (no overlapping
busy spans; per-task run time conservation) and the example scripts'
Gantt-style ASCII rendering.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Tuple


class SegmentKind(enum.Enum):
    RUN = "run"
    RESTORE = "restore"
    CHECKPOINT = "checkpoint"


@dataclasses.dataclass(frozen=True)
class Segment:
    """One contiguous span of NPU occupancy attributed to a task."""

    task_id: int
    kind: SegmentKind
    start_cycles: float
    end_cycles: float

    def __post_init__(self) -> None:
        if self.end_cycles < self.start_cycles:
            raise ValueError("segment ends before it starts")

    @property
    def duration_cycles(self) -> float:
        return self.end_cycles - self.start_cycles


class Timeline:
    """Ordered record of NPU occupancy over one simulation run."""

    def __init__(self) -> None:
        self._segments: List[Segment] = []
        self._instants: List[Segment] = []

    def record(
        self, task_id: int, kind: SegmentKind, start: float, end: float
    ) -> None:
        if end < start:
            raise ValueError("segment ends before it starts")
        if end > start:
            self._segments.append(Segment(task_id, kind, start, end))
        else:
            # Zero-duration spans (e.g. a restore with nothing to restore,
            # a checkpoint trap with zero latency) used to vanish here.
            # They carry real lifecycle information -- trace export and
            # run-time-conservation accounting both want to see them -- so
            # they are kept as instant events on a side list, leaving
            # ``segments`` (and every golden digest over it) untouched.
            self._instants.append(Segment(task_id, kind, start, end))

    @property
    def segments(self) -> Tuple[Segment, ...]:
        return tuple(self._segments)

    @property
    def instants(self) -> Tuple[Segment, ...]:
        """Zero-duration records, in recording order (never busy time)."""
        return tuple(self._instants)

    def __len__(self) -> int:
        return len(self._segments)

    def busy_cycles(self) -> float:
        return sum(segment.duration_cycles for segment in self._segments)

    def run_cycles_by_task(self) -> Dict[int, float]:
        totals: Dict[int, float] = {}
        for segment in self._segments:
            if segment.kind == SegmentKind.RUN:
                totals[segment.task_id] = (
                    totals.get(segment.task_id, 0.0) + segment.duration_cycles
                )
        return totals

    def verify_no_overlap(self, tolerance: float = 1e-6) -> None:
        """Raise if any two busy segments overlap (core simulator invariant)."""
        ordered = sorted(self._segments, key=lambda s: s.start_cycles)
        for previous, current in zip(ordered, ordered[1:]):
            if current.start_cycles < previous.end_cycles - tolerance:
                raise AssertionError(
                    f"overlapping segments: {previous} then {current}"
                )

    def span_bounds(self) -> Optional[Tuple[float, float]]:
        """(first start, last end) over all segments; None when empty."""
        if not self._segments:
            return None
        return (
            min(s.start_cycles for s in self._segments),
            max(s.end_cycles for s in self._segments),
        )

    def render_ascii(
        self,
        width: int = 80,
        label_by_task: Optional[Dict[int, str]] = None,
    ) -> str:
        """A Fig 2-style one-line-per-task Gantt chart."""
        if not self._segments:
            return "(empty timeline)"
        start = min(s.start_cycles for s in self._segments)
        end = max(s.end_cycles for s in self._segments)
        span = max(end - start, 1.0)
        task_ids = sorted({s.task_id for s in self._segments})
        lines = []
        for task_id in task_ids:
            row = [" "] * width
            for segment in self._segments:
                if segment.task_id != task_id:
                    continue
                lo = int((segment.start_cycles - start) / span * (width - 1))
                hi = max(lo + 1, int((segment.end_cycles - start) / span * (width - 1)))
                char = {"run": "#", "restore": "r", "checkpoint": "c"}[
                    segment.kind.value
                ]
                for position in range(lo, min(hi, width)):
                    row[position] = char
            label = (
                label_by_task.get(task_id, f"T{task_id}")
                if label_by_task
                else f"T{task_id}"
            )
            lines.append(f"{label:>12s} |{''.join(row)}|")
        return "\n".join(lines)


class ClusterTimeline:
    """Per-device execution traces of one cluster run.

    Wraps one :class:`Timeline` per device that received work.  The
    per-device invariants still hold device-by-device (one NPU cannot
    overlap itself); across devices, segments legitimately overlap in
    wall-clock time -- that is the parallelism the cluster buys.

    ``transfers`` optionally carries the interconnect transfer records of
    checkpoint migrations, so one object tells the whole story of a run:
    what each NPU executed plus what moved between them.
    """

    def __init__(
        self,
        device_timelines: Dict[int, Timeline],
        transfers: Tuple = (),
    ) -> None:
        self._devices: Dict[int, Timeline] = dict(
            sorted(device_timelines.items())
        )
        self._transfers = tuple(transfers)

    @property
    def transfers(self) -> Tuple:
        """Interconnect transfer records (empty unless migration ran)."""
        return self._transfers

    def migrated_bytes(self) -> float:
        return sum(t.num_bytes for t in self._transfers)

    def interconnect_busy_cycles(self) -> float:
        """Total cycles links spent serving checkpoint transfers."""
        return sum(
            t.end_cycles - t.start_cycles for t in self._transfers
        )

    @property
    def device_ids(self) -> Tuple[int, ...]:
        return tuple(self._devices)

    def __getitem__(self, device_id: int) -> Timeline:
        return self._devices[device_id]

    def __contains__(self, device_id: int) -> bool:
        return device_id in self._devices

    def __len__(self) -> int:
        return len(self._devices)

    def busy_cycles(self) -> float:
        """Total NPU-busy cycles summed across devices."""
        return sum(t.busy_cycles() for t in self._devices.values())

    def busy_cycles_by_device(self) -> Dict[int, float]:
        return {d: t.busy_cycles() for d, t in self._devices.items()}

    def run_cycles_by_task(self) -> Dict[int, float]:
        """Cluster-wide useful RUN cycles per task (conservation checks)."""
        totals: Dict[int, float] = {}
        for timeline in self._devices.values():
            for task_id, cycles in timeline.run_cycles_by_task().items():
                totals[task_id] = totals.get(task_id, 0.0) + cycles
        return totals

    def verify_no_overlap(self, tolerance: float = 1e-6) -> None:
        """Per-device no-overlap invariant (devices run in parallel)."""
        for timeline in self._devices.values():
            timeline.verify_no_overlap(tolerance)

    def span_cycles(self) -> float:
        """Wall-clock span from the earliest start to the latest end."""
        bounds = [
            b for b in (t.span_bounds() for t in self._devices.values()) if b
        ]
        if not bounds:
            return 0.0
        return max(hi for _, hi in bounds) - min(lo for lo, _ in bounds)

    def render_ascii(
        self,
        width: int = 80,
        label_by_task: Optional[Dict[int, str]] = None,
    ) -> str:
        """Stacked per-device Gantt charts on one shared time axis."""
        if not self._devices:
            return "(empty cluster timeline)"
        sections = []
        for device_id, timeline in self._devices.items():
            chart = timeline.render_ascii(width, label_by_task)
            sections.append(f"NPU {device_id}\n{chart}")
        if self._transfers:
            sections.append(
                f"interconnect: {len(self._transfers)} transfers, "
                f"{self.migrated_bytes() / 1024:.1f} KiB, "
                f"{self.interconnect_busy_cycles():.0f} busy cycles"
            )
        return "\n".join(sections)
