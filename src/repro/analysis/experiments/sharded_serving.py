"""Extension experiment: pipeline-sharded, router-batched serving.

The PR-6 job surface gives the cluster router two levers the paper's
one-task-one-device dispatch lacks:

- **Router batching**: compatible queued requests for the same model
  coalesce into one dispatch (``max + alpha * (sum - max)`` marginal
  cost), amortizing weight-fetch and switch overhead;
- **Pipeline sharding**: a dispatch whose merged cost is large enough is
  cut into balanced stages gang-scheduled across devices, inter-stage
  activations shipping over the modeled fabric (DMA-out / compute /
  DMA-in), which breaks head-of-line blocking behind giant merged
  dispatches.

This harness drives an overloaded open-arrival trace (2.5x a 4-NPU
fleet's capacity -- the regime where dispatch efficiency is the whole
game) through three router configurations:

- ``single-device``: the status-quo one-task-one-device online dispatch;
- ``batched``: router batching only;
- ``sharded+batched``: batching plus 2-stage gangs for merged dispatches
  clearing the sharding floor.

Headline claims (pinned by ``tests/test_sharded_experiment.py`` and
``benchmarks/bench_sharded_serving.py``): at overload, ``batched`` and
``sharded+batched`` both beat ``single-device`` on **aggregate
throughput** (completions per second over the run's makespan), and
``sharded+batched`` recovers tail latency relative to pure batching --
sharding spreads the merged dispatches that batching makes heavy.
"""

from __future__ import annotations

import copy
import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.reporting import format_table
from repro.npu.config import NPUConfig
from repro.sched.cluster import ClusterConfig, ClusterScheduler, RoutingPolicy
from repro.sched.interconnect import InterconnectConfig
from repro.sched.job import BatchConfig
from repro.sched.metrics import compute_cluster_metrics
from repro.sched.simulator import PreemptionMode, SimulationConfig
from repro.workloads.trace import (
    DEFAULT_MEAN_INTERARRIVAL_CYCLES,
    synthetic_trace_runtimes,
)

NUM_DEVICES = 4
#: Offered load vs fleet capacity.  The acceptance regime is >= 2x;
#: 2.5x keeps a deep router queue alive for the whole run.
OVERLOAD = 2.5
#: Batch window: ~7 ms at 700 MHz, a few dozen mean interarrivals at the
#: overloaded rate -- long enough to coalesce, short against queueing.
WINDOW_CYCLES = 5e6
MAX_BATCH = 8
#: Marginal cost of a joining request (weight fetch + switch shared).
MARGINAL_FRACTION = 0.6
#: Only merged dispatches at least this big shard: cutting small ones
#: just buys activation-DMA overhead.
MIN_SHARD_CYCLES = 4e6
SHARD_STAGES = 2

FULL_NUM_TASKS = 400
FULL_SEEDS: Tuple[int, ...] = tuple(range(3, 11))
QUICK_NUM_TASKS = 200
QUICK_SEEDS: Tuple[int, ...] = (5, 6, 7)

MODES = ("single-device", "batched", "sharded+batched")

_FREQUENCY_HZ = 700e6


@dataclasses.dataclass(frozen=True)
class ShardedServingRow:
    """One router configuration's metrics, averaged over the ensemble."""

    mode: str
    tasks_per_sec: float
    p99_turnaround_ms: float
    antt: float
    mean_batch_size: float
    sharded_dispatches: float
    activation_mb: float
    makespan_ms: float


def _batching_for(mode: str) -> Optional[BatchConfig]:
    if mode == "single-device":
        return None
    if mode == "batched":
        return BatchConfig(
            window_cycles=WINDOW_CYCLES,
            max_batch=MAX_BATCH,
            marginal_fraction=MARGINAL_FRACTION,
        )
    if mode == "sharded+batched":
        return BatchConfig(
            window_cycles=WINDOW_CYCLES,
            max_batch=MAX_BATCH,
            marginal_fraction=MARGINAL_FRACTION,
            shard_stages=SHARD_STAGES,
            min_shard_cycles=MIN_SHARD_CYCLES,
        )
    raise ValueError(f"unknown mode {mode!r}")


def run_sharded_serving(
    config: Optional[NPUConfig] = None,
    num_devices: int = NUM_DEVICES,
    num_tasks: Optional[int] = None,
    seeds: Optional[Sequence[int]] = None,
    overload: float = OVERLOAD,
    quick: bool = False,
) -> List[ShardedServingRow]:
    config = config or NPUConfig()
    if seeds is None:
        seeds = QUICK_SEEDS if quick else FULL_SEEDS
    if num_tasks is None:
        num_tasks = QUICK_NUM_TASKS if quick else FULL_NUM_TASKS
    traces = [
        synthetic_trace_runtimes(
            num_tasks,
            seed=seed,
            mean_interarrival_cycles=(
                DEFAULT_MEAN_INTERARRIVAL_CYCLES / (num_devices * overload)
            ),
        )
        for seed in seeds
    ]
    sim_config = SimulationConfig(npu=config, mode=PreemptionMode.DYNAMIC)
    rows: List[ShardedServingRow] = []
    for mode in MODES:
        throughputs: List[float] = []
        p99s: List[float] = []
        antts: List[float] = []
        batch_sizes: List[float] = []
        sharded: List[float] = []
        activation: List[float] = []
        makespans: List[float] = []
        for trace in traces:
            scheduler = ClusterScheduler(
                num_devices,
                sim_config,
                config=ClusterConfig(
                    routing=RoutingPolicy.ONLINE_PREDICTED,
                    interconnect=InterconnectConfig.nvlink(),
                    batching=_batching_for(mode),
                ),
            )
            # Fresh runtimes per run: the scheduler mutates them.
            result = scheduler.run([copy.deepcopy(t) for t in trace])
            metrics = compute_cluster_metrics(result)
            makespan_sec = result.makespan_cycles / _FREQUENCY_HZ
            throughputs.append(len(result.tasks) / makespan_sec)
            turnarounds = [t.turnaround_cycles for t in result.tasks]
            p99s.append(
                float(np.percentile(np.asarray(turnarounds), 99.0))
                / _FREQUENCY_HZ * 1e3
            )
            antts.append(metrics.antt)
            batch_sizes.append(metrics.mean_batch_size)
            sharded.append(float(metrics.sharded_job_count))
            activation.append(metrics.activation_bytes_total / 2**20)
            makespans.append(makespan_sec * 1e3)
        rows.append(
            ShardedServingRow(
                mode=mode,
                tasks_per_sec=float(np.mean(throughputs)),
                p99_turnaround_ms=float(np.mean(p99s)),
                antt=float(np.mean(antts)),
                mean_batch_size=float(np.mean(batch_sizes)),
                sharded_dispatches=float(np.mean(sharded)),
                activation_mb=float(np.mean(activation)),
                makespan_ms=float(np.mean(makespans)),
            )
        )
    return rows


def format_sharded_serving(rows: Sequence[ShardedServingRow]) -> str:
    return format_table(
        ("mode", "tasks/s", "p99_turnaround", "ANTT", "mean_batch",
         "sharded", "activation_MB", "makespan"),
        [
            (r.mode,
             round(r.tasks_per_sec, 1),
             f"{r.p99_turnaround_ms:.1f} ms",
             round(r.antt, 2),
             round(r.mean_batch_size, 2),
             round(r.sharded_dispatches, 1),
             round(r.activation_mb, 1),
             f"{r.makespan_ms:.1f} ms")
            for r in rows
        ],
        title=(
            "Extension: router batching + pipeline-sharded gangs "
            f"({NUM_DEVICES} NPUs at {OVERLOAD:.1f}x overload, "
            "NVLink-class fabric)"
        ),
    )
