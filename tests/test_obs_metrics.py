"""Streaming metrics (repro.obs.metrics): ring-buffer bounded-memory
properties, instrument semantics, and the cluster sampling integration."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsSampler, RingBuffer, Tracer
from repro.obs.metrics import Counter, Gauge, Histogram
from repro.sched.cluster import (
    ClusterConfig,
    ClusterScheduler,
    RoutingPolicy,
)
from repro.sched.rack import RackTopology
from repro.sched.simulator import PreemptionMode, SimulationConfig
from repro.serving.slo import DEFAULT_SLOS
from repro.workloads.generator import WorkloadGenerator


class TestRingBuffer:
    @settings(max_examples=60, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=64),
        count=st.integers(min_value=0, max_value=400),
    )
    def test_bounded_and_keeps_newest(self, capacity, count):
        """Memory stays <= capacity and the survivors are the newest
        items in order -- the bounded-memory property of every series."""
        buffer = RingBuffer(capacity)
        for item in range(count):
            buffer.append(item)
        assert len(buffer) == min(capacity, count)
        assert buffer.total_appended == count
        expected = list(range(count))[-capacity:]
        assert list(buffer) == expected
        if count:
            assert buffer.last() == count - 1

    def test_empty_last_raises(self):
        with pytest.raises(IndexError):
            RingBuffer(4).last()

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            RingBuffer(0)


class TestInstruments:
    def test_counter_and_gauge(self):
        counter, gauge = Counter(), Gauge()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        gauge.set(7.0)
        gauge.set(1.0)
        assert gauge.value == 1.0

    def test_histogram_stats(self):
        histogram = Histogram()
        for value in (1.0, 2.0, 4.0, 1024.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.min == 1.0
        assert histogram.max == 1024.0
        assert histogram.mean == pytest.approx(1031.0 / 4)
        assert histogram.quantile(0.5) <= histogram.quantile(1.0)

    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(
            st.floats(
                min_value=0.0, max_value=1e18,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1, max_size=200,
        )
    )
    def test_histogram_bounded_state(self, values):
        """Bucket count stays O(log range) no matter how many points."""
        histogram = Histogram()
        for value in values:
            histogram.observe(value)
        assert len(histogram.buckets) <= 64
        assert histogram.count == len(values)
        assert math.isclose(
            histogram.mean, sum(values) / len(values), rel_tol=1e-9
        )


class TestSampler:
    def test_interval_gates_sampling(self):
        sampler = MetricsSampler(interval_cycles=100.0)
        sampler.inc("arrivals")
        assert sampler.due(0.0)
        sampler.sample(0.0)
        assert sampler.next_due == 100.0
        assert not sampler.due(99.9)
        assert sampler.due(100.0)

    def test_windowed_rate_and_attainment(self):
        sampler = MetricsSampler(interval_cycles=10.0)
        sampler.inc("sla.met", 3)
        sampler.inc("sla.missed", 1)
        sampler.sample(0.0)
        sampler.inc("sla.met", 1)
        sampler.inc("sla.missed", 3)
        sampler.sample(10.0)
        sampler.sample(20.0)  # idle window: no outcomes, no point
        rates = sampler.windowed_rate("sla.met")
        assert rates == [(10.0, 1.0), (20.0, 0.0)]
        attainment = dict(sampler.attainment_series())
        assert attainment[10.0] == pytest.approx(0.25)
        assert 20.0 not in attainment

    def test_task_completed_scores_slas(self, factory, config):
        workload = WorkloadGenerator(seed=5).generate(num_tasks=8)
        tasks = factory.build_workload(workload)
        sim = SimulationConfig(npu=config, mode=PreemptionMode.DYNAMIC)
        sampler = MetricsSampler(interval_cycles=50_000.0, slos=DEFAULT_SLOS)
        scheduler = ClusterScheduler(
            2, sim,
            config=ClusterConfig(
                routing=RoutingPolicy.ONLINE_PREDICTED,
                metrics_sampler=sampler,
            ),
        )
        scheduler.run(tasks)
        assert sampler.counters["tasks.completed"].value == len(tasks)
        outcomes = (
            sampler.counters.get("sla.met", Counter()).value
            + sampler.counters.get("sla.missed", Counter()).value
        )
        assert outcomes == len(tasks)

    def test_mirrors_to_tracer(self):
        tracer = Tracer()
        sampler = MetricsSampler(interval_cycles=10.0, tracer=tracer)
        sampler.set_gauge("g", 4.0)
        sampler.sample(0.0)
        counters = [event for event in tracer.events if event[0] == "C"]
        assert counters and counters[0][2] == "g"


class TestClusterSampling:
    def run_sampled(self, factory, config, capacity=512, **extra):
        sim = SimulationConfig(npu=config, mode=PreemptionMode.DYNAMIC)
        workload = WorkloadGenerator(seed=81).generate(num_tasks=24)
        sampler = MetricsSampler(interval_cycles=20_000.0, capacity=capacity)
        scheduler = ClusterScheduler(
            4, sim,
            config=ClusterConfig(
                routing=RoutingPolicy.PREEMPTIVE_MIGRATION,
                metrics_sampler=sampler,
                seed=0,
                **extra,
            ),
        )
        scheduler.run(factory.build_workload(workload))
        return sampler

    def test_fleet_series_recorded(self, factory, config):
        sampler = self.run_sampled(factory, config)
        names = sampler.series_names()
        for expected in (
            "cluster.utilization",
            "cluster.queue_depth",
            "cluster.backlog_cycles",
            "cluster.migrations",
            "device0.busy",
            "device3.backlog_cycles",
            "tasks.completed",
        ):
            assert expected in names
        for _, value in sampler.series("cluster.utilization"):
            assert 0.0 <= value <= 1.0
        # Completion counters are cumulative, so samples never decrease.
        completed = [v for _, v in sampler.series("tasks.completed")]
        assert completed == sorted(completed)

    def test_series_memory_is_bounded(self, factory, config):
        capacity = 8
        sampler = self.run_sampled(factory, config, capacity=capacity)
        assert sampler._series["cluster.utilization"].total_appended > capacity
        for name in sampler.series_names():
            assert len(sampler.series(name)) <= capacity

    def test_rack_series_recorded(self, factory, config):
        sampler = self.run_sampled(
            factory, config, racks=RackTopology.uniform(2, 2)
        )
        names = sampler.series_names()
        assert "rack0.busy_devices" in names
        assert "rack1.busy_devices" in names
