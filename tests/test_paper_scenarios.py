"""The paper's Fig 2 scenario: three tasks under four schedulers.

I1: long, low priority, arrives first.
I2: short, low priority, arrives second.
I3: short, high priority, arrives third.

Fig 2's qualitative orderings:
(a) NP-FCFS serves I1, I2, I3 in arrival order -- I3 waits longest.
(b) NP-HPF lets I3 jump I2 but still waits for I1.
(c) P-HPF preempts I1 for I3; I2 is served last (starvation risk).
(d) PREMA additionally lets the short I2 run before I1's remainder.
"""

import pytest

from repro.core.tokens import Priority
from repro.sched.policies import make_policy
from repro.sched.simulator import NPUSimulator, PreemptionMode, SimulationConfig
from repro.workloads.specs import TaskSpec


@pytest.fixture(scope="module")
def scenario(config):
    # I1 = VGG (long), I2 = GoogLeNet (short), I3 = AlexNet (short, high).
    return [
        TaskSpec(0, "CNN-VN", 1, Priority.LOW, 0.0),
        TaskSpec(1, "CNN-GN", 1, Priority.LOW, config.ms_to_cycles(0.5)),
        TaskSpec(2, "CNN-AN", 1, Priority.HIGH, config.ms_to_cycles(1.0)),
    ]


def run(config, factory, scenario, policy, mode):
    simulator = NPUSimulator(
        SimulationConfig(npu=config, mode=mode), make_policy(policy)
    )
    tasks = factory.build_workload_like(scenario) if hasattr(
        factory, "build_workload_like") else [factory.build_task(s) for s in scenario]
    return simulator.run(tasks)


class TestFig2Orderings:
    def test_np_fcfs_arrival_order(self, config, factory, scenario):
        result = run(config, factory, scenario, "FCFS", PreemptionMode.NP)
        completions = [result.task_by_id(i).completion_time for i in range(3)]
        assert completions[0] < completions[1] < completions[2]

    def test_np_hpf_i3_jumps_i2(self, config, factory, scenario):
        result = run(config, factory, scenario, "HPF", PreemptionMode.NP)
        i1, i2, i3 = (result.task_by_id(i) for i in range(3))
        assert i3.completion_time < i2.completion_time
        # ... but I3 still waited behind the long I1 (non-preemptive).
        assert i3.completion_time > i1.completion_time

    def test_p_hpf_preempts_i1_for_i3(self, config, factory, scenario):
        result = run(config, factory, scenario, "HPF", PreemptionMode.STATIC)
        i1, i2, i3 = (result.task_by_id(i) for i in range(3))
        assert i1.preemption_count >= 1
        assert i3.completion_time < i1.completion_time
        assert i3.completion_time < i2.completion_time
        # I3's latency is near-isolated (the Fig 2c payoff).
        assert i3.normalized_turnaround < 1.5

    def test_prema_serves_short_i2_before_i1_remainder(
        self, config, factory, scenario
    ):
        result = run(config, factory, scenario, "PREMA", PreemptionMode.DYNAMIC)
        i1, i2, i3 = (result.task_by_id(i) for i in range(3))
        # The Fig 2d ordering: both short tasks finish before the long I1.
        assert i3.completion_time < i1.completion_time
        assert i2.completion_time < i1.completion_time

    def test_prema_beats_fcfs_on_average_latency(self, config, factory, scenario):
        from repro.sched.metrics import compute_metrics

        fcfs = run(config, factory, scenario, "FCFS", PreemptionMode.NP)
        prema = run(config, factory, scenario, "PREMA", PreemptionMode.DYNAMIC)
        assert compute_metrics(prema.tasks).antt < compute_metrics(fcfs.tasks).antt

    def test_i3_latency_ordering_across_schedulers(self, config, factory, scenario):
        # The high-priority task's latency improves monotonically:
        # NP-FCFS >= NP-HPF >= P-HPF (Fig 2a -> 2b -> 2c).
        fcfs = run(config, factory, scenario, "FCFS", PreemptionMode.NP)
        np_hpf = run(config, factory, scenario, "HPF", PreemptionMode.NP)
        p_hpf = run(config, factory, scenario, "HPF", PreemptionMode.STATIC)
        t_fcfs = fcfs.task_by_id(2).turnaround_cycles
        t_np = np_hpf.task_by_id(2).turnaround_cycles
        t_p = p_hpf.task_by_id(2).turnaround_cycles
        assert t_p < t_np <= t_fcfs
