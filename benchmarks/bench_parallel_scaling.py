"""Parallel-shard scaling bench: conservative PDES across workers.

Headline: two 1024-device fleets (4 racks x 256 and 8 racks x 128)
under work-stealing with an infinite cross-rack threshold, run serially
(``workers=1``) and rack-sharded across 2 and 4 worker processes.  The
workload is a burst -- the whole trace arrives within a few thousand
cycles, long before the first ~8.4 Mcycle service completes -- so the
per-arrival coordinator barriers are cheap (the waiting-set rule polls
only the just-routed shard) and the drain phase, which parallelizes,
carries nearly all of the event processing.

Every parallel row is checked against the serial row on exact proxies
of the determinism contract (event count, float-exact completion-time
checksum, migration count); the full ``_encode_cluster_v2`` digest
equality is pinned in ``tests/test_parallel_equivalence.py``.

Speedup reporting is honest about the host: ``measured_speedup`` is
wall-clock serial/parallel on *this* machine (on a single-core
container the OS serializes the shards and the protocol overhead makes
this < 1), and ``projected_speedup`` applies the phase decomposition
from ``ClusterScheduler.last_parallel_stats`` within a single parallel
run -- the serialized sum of per-shard CPU seconds (a conservative
proxy for serial compute) over the coordinator phases at measured wall
plus the drain at the busiest single shard's compute, which is what a
host with >= ``workers`` free cores runs it at.  Using only same-run
terms keeps the gate immune to the 30%-scale between-runs throughput
drift of shared CI hosts.
The JSON lands in ``benchmarks/results/BENCH_parallel_scaling.json``
(uploaded as a CI artifact by the bench-smoke job) with ``cpu_count``
and the start method recorded alongside, so every number carries its
context.
"""

import json
import math
import os
import pathlib
import time

from repro.npu.config import NPUConfig
from repro.sched.cluster import ClusterConfig, ClusterScheduler, RoutingPolicy
from repro.sched.rack import RackTopology
from repro.sched.simulator import PreemptionMode, SimulationConfig
from repro.workloads.trace import (
    DEFAULT_MEAN_INTERARRIVAL_CYCLES,
    synthetic_trace_runtimes,
)

RESULTS_PATH = (
    pathlib.Path(__file__).parent / "results" / "BENCH_parallel_scaling.json"
)

#: (num_racks, devices_per_rack) -- both 1024-device fleets.
FLEETS = ((4, 256), (8, 128))
WORKERS = (1, 2, 4)
NUM_TASKS = 1024
#: Service-time multiplier over the trace default: compute-heavy tasks
#: maximize the drain phase's share of the run, which is the part that
#: shards.  (The per-arrival barrier floor is protocol, not compute.)
SERVICE_MULTIPLIER = 192.0
#: The 4-worker gate on the drain-projected speedup.
SPEEDUP_TARGET = 3.0


def _workload(num_tasks, num_devices, seed):
    # Burst arrivals: the full trace lands within ~10k cycles, an order
    # of magnitude before the first completion, so arrival-phase
    # barriers find (almost) no events to advance through.
    return synthetic_trace_runtimes(
        num_tasks,
        seed=seed,
        mean_interarrival_cycles=(
            DEFAULT_MEAN_INTERARRIVAL_CYCLES / (num_devices * 500.0)
        ),
        mean_service_cycles=1.5e-3 * 700e6 * SERVICE_MULTIPLIER,
    )


def _run_once(num_racks, devices_per_rack, workers, num_tasks, seed):
    num_devices = num_racks * devices_per_rack
    runtimes = _workload(num_tasks, num_devices, seed)
    sched = ClusterScheduler(
        num_devices,
        SimulationConfig(
            npu=NPUConfig(),
            mode=PreemptionMode.DYNAMIC,
            mechanism="CHECKPOINT",
        ),
        config=ClusterConfig(
            policy_name="PREMA",
            routing=RoutingPolicy.WORK_STEALING,
            seed=seed,
            racks=RackTopology.uniform(num_racks, devices_per_rack),
            cross_rack_threshold_cycles=math.inf,
            workers=None if workers == 1 else workers,
        ),
    )
    start = time.perf_counter()
    cpu_start = time.process_time()
    result = sched.run(runtimes)
    cpu_seconds = time.process_time() - cpu_start
    seconds = time.perf_counter() - start
    return {
        "workers": workers,
        "parallel": sched.last_run_parallel,
        "seconds": round(seconds, 4),
        # This process's CPU seconds: the whole simulation for the
        # serial row, the coordinator's share for parallel rows.
        # Immune to time-slicing, unlike wall.
        "cpu_seconds": round(cpu_seconds, 4),
        "tasks_per_sec": round(num_tasks / seconds, 1),
        "events_processed": result.events_processed,
        "migrations": len(result.migrations),
        # Float-exact across backends by the determinism contract.
        "completion_checksum": sum(t.completion_time for t in result.tasks),
        "stats": sched.last_parallel_stats,
    }


def _attach_speedups(row, serial):
    row["measured_speedup"] = round(serial["seconds"] / row["seconds"], 2)
    stats = row["stats"]
    if stats is None:
        row["projected_seconds"] = row["seconds"]
        row["projected_speedup"] = 1.0
        return
    drain = stats["phases"]["drain"]
    busy = stats["worker_busy_seconds"]
    # Every term below comes from the SAME run, so the projection is
    # immune to the between-runs throughput drift of shared hosts.
    # Worker busy is CPU seconds, so timesharing doesn't inflate it.
    # Numerator: the serialized sum of shard compute, a *conservative*
    # proxy for the serial backend's compute (shards run the same event
    # loop minus the routing scans the coordinator mirrors).
    # Denominator: coordinator phases at measured wall, plus the drain
    # at the busiest single shard's compute -- which is what a host
    # with >= ``workers`` free cores runs it at.
    projected = row["seconds"] - drain + max(busy)
    row["projected_seconds"] = round(projected, 4)
    row["projected_speedup"] = round(sum(busy) / projected, 2)


def run_parallel_scaling(
    fleets=FLEETS, workers_list=WORKERS, num_tasks=NUM_TASKS, seed=23
):
    """The sweep: every fleet shape x worker count, integrity-checked."""
    sweeps = []
    for num_racks, devices_per_rack in fleets:
        rows = [
            _run_once(num_racks, devices_per_rack, w, num_tasks, seed)
            for w in workers_list
        ]
        serial = rows[0]
        if serial["parallel"]:
            raise RuntimeError("workers=1 must take the serial loop")
        for row in rows:
            _attach_speedups(row, serial)
        for row in rows[1:]:
            if not row["parallel"]:
                raise RuntimeError(
                    f"workers={row['workers']} fell back to serial"
                )
            for key in (
                "events_processed",
                "migrations",
                "completion_checksum",
            ):
                if row[key] != serial[key]:
                    raise RuntimeError(
                        f"workers={row['workers']} diverged on {key}: "
                        f"{row[key]} != {serial[key]}"
                    )
        sweeps.append(
            {
                "fleet": f"{num_racks}x{devices_per_rack}",
                "num_devices": num_racks * devices_per_rack,
                "num_tasks": num_tasks,
                "rows": rows,
            }
        )
    return {
        "cpu_count": os.cpu_count(),
        "start_method": os.environ.get(
            "REPRO_PARALLEL_START_METHOD", "fork"
        ),
        "service_multiplier": SERVICE_MULTIPLIER,
        "sweeps": sweeps,
    }


def format_parallel_scaling(report):
    lines = [
        "parallel shard scaling -- burst workload, WS routing, inf "
        "threshold",
        f"  host: {report['cpu_count']} cpu(s), "
        f"{report['start_method']} start",
        f"  {'fleet':>8s} {'workers':>7s} {'seconds':>8s} "
        f"{'events':>8s} {'measured':>9s} {'projected':>10s}",
    ]
    for sweep in report["sweeps"]:
        for row in sweep["rows"]:
            lines.append(
                f"  {sweep['fleet']:>8s} {row['workers']:>7d} "
                f"{row['seconds']:>8.2f} {row['events_processed']:>8d} "
                f"{row['measured_speedup']:>8.2f}x "
                f"{row['projected_speedup']:>9.2f}x"
            )
    return "\n".join(lines)


def test_parallel_scaling(emit):
    report = run_parallel_scaling()
    emit("parallel_scaling", format_parallel_scaling(report))
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    for sweep in report["sweeps"]:
        by_workers = {row["workers"]: row for row in sweep["rows"]}
        # The sharded backend engaged and reproduced the serial run
        # exactly (run_parallel_scaling raises on any divergence).
        assert by_workers[4]["parallel"]
        assert by_workers[4]["tasks_per_sec"] > 0
        # The drain-projected 4-worker speedup clears the target on
        # every fleet shape; wall-clock must clear it too when the
        # host actually has the cores to run the shards concurrently.
        assert by_workers[4]["projected_speedup"] >= SPEEDUP_TARGET
        if (os.cpu_count() or 1) >= 8:
            assert by_workers[4]["measured_speedup"] >= 1.5


if __name__ == "__main__":
    report = run_parallel_scaling()
    print(format_parallel_scaling(report))
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    print(f"[written to {RESULTS_PATH}]")
