"""Fig 6: STP and preempting-task NTT per mechanism, vs NP-FCFS.

Same two-task methodology as Fig 5, but the x-axis is the *preempting*
(high-priority) task, because its length dominates the STP/NTT dynamics:
short preemptors (CNN-GN, RNN-SA) gain the most from KILL/CHECKPOINT.

Each sample simulates the pair twice -- NP-FCFS baseline and P-HPF with
the mechanism under study -- and reports the preempting task's NTT
improvement and the pair's STP ratio.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.experiments.fig05_preemption import _lengths
from repro.analysis.reporting import format_table
from repro.core.tokens import Priority
from repro.npu.config import NPUConfig
from repro.sched.metrics import compute_metrics
from repro.sched.policies import make_policy
from repro.sched.prepare import TaskFactory
from repro.sched.simulator import NPUSimulator, PreemptionMode, SimulationConfig
from repro.workloads.specs import TaskSpec

MECHANISMS = ("KILL", "CHECKPOINT", "DRAIN")
BATCHES = (1, 4, 16)
BENCHMARKS = ("CNN-AN", "CNN-GN", "CNN-VN", "CNN-MN",
              "RNN-SA", "RNN-MT1", "RNN-MT2", "RNN-ASR")


@dataclasses.dataclass(frozen=True)
class MechanismImpactRow:
    """One (preempting benchmark, batch, mechanism) measurement."""

    benchmark: str
    batch: int
    mechanism: str
    stp_improvement: float
    ntt_improvement: float


def _make_pair(
    low_benchmark: str,
    high_benchmark: str,
    batch: int,
    arrival_fraction: float,
    factory: TaskFactory,
) -> Tuple[TaskSpec, TaskSpec]:
    """A low-priority task at t=0 preempted by a high-priority arrival."""
    low_in, low_out = _lengths(low_benchmark)
    high_in, high_out = _lengths(high_benchmark)
    low = TaskSpec(
        task_id=0,
        benchmark=low_benchmark,
        batch=batch,
        priority=Priority.LOW,
        arrival_cycles=0.0,
        input_len=low_in,
        actual_output_len=low_out,
    )
    low_cycles = factory.isolated_cycles(low)
    high = TaskSpec(
        task_id=1,
        benchmark=high_benchmark,
        batch=batch,
        priority=Priority.HIGH,
        arrival_cycles=arrival_fraction * low_cycles,
        input_len=high_in,
        actual_output_len=high_out,
    )
    return low, high


def _run_pair(
    specs: Tuple[TaskSpec, TaskSpec],
    mode: PreemptionMode,
    mechanism: str,
    factory: TaskFactory,
    config: NPUConfig,
) -> Tuple[float, float]:
    """(STP, preempting-task NTT) for one simulated pair."""
    # DRAIN never switches, which is exactly non-preemptive behaviour for
    # a two-task workload, so it runs in NP mode.
    simulator = NPUSimulator(
        SimulationConfig(npu=config, mode=mode, mechanism=mechanism),
        make_policy("HPF"),
    )
    tasks = [factory.build_task(spec) for spec in specs]
    result = simulator.run(tasks)
    metrics = compute_metrics(result.tasks)
    return metrics.stp, metrics.ntt_by_task[1]


def run_fig06(
    config: Optional[NPUConfig] = None,
    benchmarks: Sequence[str] = BENCHMARKS,
    batches: Sequence[int] = BATCHES,
    samples: int = 10,
    seed: int = 6,
    factory: Optional[TaskFactory] = None,
) -> List[MechanismImpactRow]:
    """Measure Fig 6's two panels for every (preemptor, batch, mechanism)."""
    config = config or NPUConfig()
    factory = factory or TaskFactory(config)
    rng = random.Random(seed)
    rows: List[MechanismImpactRow] = []
    for high_benchmark in benchmarks:
        for batch in batches:
            stp = {name: [] for name in MECHANISMS}
            ntt = {name: [] for name in MECHANISMS}
            for _ in range(samples):
                low_benchmark = rng.choice(
                    [b for b in benchmarks if b != high_benchmark]
                )
                fraction = rng.uniform(0.05, 0.95)
                specs = _make_pair(
                    low_benchmark, high_benchmark, batch, fraction, factory
                )
                base_stp, base_ntt = _run_pair(
                    specs, PreemptionMode.NP, "CHECKPOINT", factory, config
                )
                for name in MECHANISMS:
                    if name == "DRAIN":
                        mech_stp, mech_ntt = base_stp, base_ntt
                    else:
                        mech_stp, mech_ntt = _run_pair(
                            specs, PreemptionMode.STATIC, name, factory, config
                        )
                    stp[name].append(mech_stp / base_stp)
                    ntt[name].append(base_ntt / mech_ntt)
            for name in MECHANISMS:
                rows.append(
                    MechanismImpactRow(
                        benchmark=high_benchmark,
                        batch=batch,
                        mechanism=name,
                        stp_improvement=sum(stp[name]) / len(stp[name]),
                        ntt_improvement=sum(ntt[name]) / len(ntt[name]),
                    )
                )
    return rows


def summarize(rows: Sequence[MechanismImpactRow]) -> Dict[str, Dict[str, float]]:
    summary: Dict[str, Dict[str, float]] = {}
    for name in MECHANISMS:
        selected = [row for row in rows if row.mechanism == name]
        summary[name] = {
            "stp_improvement": sum(r.stp_improvement for r in selected)
            / len(selected),
            "ntt_improvement": sum(r.ntt_improvement for r in selected)
            / len(selected),
        }
    return summary


def format_fig06(rows: Sequence[MechanismImpactRow]) -> str:
    table_rows = [
        (row.benchmark, f"b{row.batch:02d}", row.mechanism,
         row.stp_improvement, row.ntt_improvement)
        for row in rows
    ]
    for name, values in summarize(rows).items():
        table_rows.append(
            ("Avg", "-", name, values["stp_improvement"], values["ntt_improvement"])
        )
    return format_table(
        ("preemptor", "batch", "mechanism", "STP_impr", "NTT_impr"),
        table_rows,
        title="Fig 6: STP (a) and preempting-task NTT (b) vs NP-FCFS",
    )
