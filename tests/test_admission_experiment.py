"""The admission_control experiment's headline claims (quick ensemble)."""

import pytest

from repro.analysis.experiments.admission_control import (
    format_admission_control,
    run_admission_control,
)


@pytest.fixture(scope="module")
def outcome():
    return run_admission_control(quick=True)


class TestAdmissionControlExperiment:
    def test_headline_interactive_attainment(self, outcome):
        """Admission + feedback beats admit-all on interactive SLA
        attainment at 2x overload, with rejections counted as misses."""
        rows, _ = outcome
        by_frontend = {r.frontend: r for r in rows}
        admit_all = by_frontend["admit-all"]
        feedback = by_frontend["admission+feedback"]
        assert feedback.interactive_attainment > admit_all.interactive_attainment
        # The controller is genuinely refusing and deferring work.
        assert feedback.rejection_rate > 0.05
        assert feedback.deferrals > 0

    def test_goodput_not_sacrificed(self, outcome):
        """Refusing hopeless work must not cost useful throughput."""
        rows, _ = outcome
        by_frontend = {r.frontend: r for r in rows}
        assert by_frontend["admission+feedback"].goodput >= (
            by_frontend["admit-all"].goodput * 0.95
        )

    def test_admit_all_never_rejects(self, outcome):
        rows, _ = outcome
        admit_all = next(r for r in rows if r.frontend == "admit-all")
        assert admit_all.rejection_rate == 0.0
        assert admit_all.deferrals == 0.0

    def test_prediction_correction_converges(self, outcome):
        """Corrected MAPE beats raw, and decreases as completions accrue."""
        _, curve = outcome
        assert curve.observations > 0
        assert curve.early_mape < curve.raw_mape
        assert curve.late_mape < curve.raw_mape
        assert curve.late_mape <= curve.early_mape

    def test_format(self, outcome):
        rows, curve = outcome
        text = format_admission_control(rows, curve)
        assert "admission control" in text
        assert "admit-all" in text
        assert "admission+feedback" in text
        assert "MAPE" in text
