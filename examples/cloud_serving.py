#!/usr/bin/env python
"""Cloud MLaaS serving scenario: SLA tiers on one shared NPU.

Models a Google-Cloud-ML-style service with three pricing tiers (the
paper's Sec I motivation): a latency-critical "online prediction" tenant
(high priority), an interactive tenant (medium), and a "batch prediction"
tenant (low).  Each tier submits an open-loop request stream; the script
reports per-tier p50/p95 latency and SLA attainment under NP-FCFS vs
PREMA, showing how a preemptible NPU protects the paid tier without
stalling the batch tier into starvation.

Run:  python examples/cloud_serving.py
"""

import random

import numpy as np

from repro import (
    NPUConfig,
    NPUSimulator,
    PreemptionMode,
    Priority,
    SimulationConfig,
    TaskFactory,
    make_policy,
)
from repro.workloads.specs import TaskSpec

#: (tier, priority, model served, requests, mean inter-arrival ms).
TIERS = (
    ("online", Priority.HIGH, "CNN-GN", 12, 4.0),
    ("interactive", Priority.MEDIUM, "CNN-AN", 10, 5.0),
    ("batch", Priority.LOW, "CNN-VN", 6, 9.0),
)
#: Per-tier SLA target, as a multiple of isolated latency (Sec VI-C).
SLA_MULTIPLier = {"online": 2.0, "interactive": 4.0, "batch": 10.0}


def build_requests(config: NPUConfig, seed: int = 7):
    rng = random.Random(seed)
    specs = []
    for tier, priority, benchmark, count, gap_ms in TIERS:
        clock = 0.0
        for _ in range(count):
            clock += rng.expovariate(1.0 / config.ms_to_cycles(gap_ms))
            specs.append((tier, TaskSpec(
                task_id=0,  # reassigned below
                benchmark=benchmark,
                batch=1,
                priority=priority,
                arrival_cycles=clock,
            )))
    specs.sort(key=lambda pair: pair[1].arrival_cycles)
    tiers, ordered = [], []
    import dataclasses
    for task_id, (tier, spec) in enumerate(specs):
        tiers.append(tier)
        ordered.append(dataclasses.replace(spec, task_id=task_id))
    return tiers, ordered


def serve(config, factory, specs, policy, mode):
    simulator = NPUSimulator(
        SimulationConfig(npu=config, mode=mode), make_policy(policy)
    )
    tasks = [factory.build_task(spec) for spec in specs]
    simulator.run(tasks)
    return tasks


def report(config, label, tiers, tasks):
    print(f"\n=== {label} ===")
    print(f"  {'tier':12s} {'p50 ms':>8s} {'p95 ms':>8s} {'SLA met':>8s}")
    for tier_name, _, _, _, _ in TIERS:
        selected = [t for tier, t in zip(tiers, tasks) if tier == tier_name]
        latencies = [config.cycles_to_ms(t.turnaround_cycles) for t in selected]
        met = sum(
            1 for t in selected
            if t.turnaround_cycles
            <= SLA_MULTIPLier[tier_name] * t.isolated_cycles
        )
        print(
            f"  {tier_name:12s} {np.percentile(latencies, 50):8.2f} "
            f"{np.percentile(latencies, 95):8.2f} "
            f"{met}/{len(selected):>4d}"
        )


def main() -> None:
    config = NPUConfig()
    factory = TaskFactory(config)
    tiers, specs = build_requests(config)
    print(f"Serving {len(specs)} requests across {len(TIERS)} pricing tiers")
    for label, policy, mode in (
        ("NP-FCFS (TensorRT-server baseline)", "FCFS", PreemptionMode.NP),
        ("PREMA (preemptible NPU)", "PREMA", PreemptionMode.DYNAMIC),
    ):
        tasks = serve(config, factory, specs, policy, mode)
        report(config, label, tiers, tasks)


if __name__ == "__main__":
    main()
