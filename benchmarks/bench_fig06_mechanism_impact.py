"""Regenerates paper Fig 6: STP / preemptor-NTT per mechanism vs NP-FCFS."""

from repro.analysis.experiments.fig06_mechanism_impact import (
    format_fig06,
    run_fig06,
    summarize,
)


def test_fig06_mechanism_impact(benchmark, config, factory, emit):
    rows = benchmark.pedantic(
        run_fig06,
        kwargs=dict(config=config, factory=factory, samples=6),
        rounds=1,
        iterations=1,
    )
    emit("fig06_mechanism_impact", format_fig06(rows))
    summary = summarize(rows)
    # Fig 6b: preempting mechanisms deliver multi-x NTT improvements for
    # the high-priority task (paper: ~3x average), DRAIN ~= baseline.
    assert summary["KILL"]["ntt_improvement"] > 1.5
    assert summary["CHECKPOINT"]["ntt_improvement"] > 1.5
    assert abs(summary["DRAIN"]["ntt_improvement"] - 1.0) < 0.05
    # Fig 6a: CHECKPOINT retains more system throughput than KILL.
    assert summary["CHECKPOINT"]["stp_improvement"] >= \
        summary["KILL"]["stp_improvement"]
