"""The benchmark model zoo (paper Sec III).

Eight cloud-inference DNNs: four CNNs with diverse convolution styles
(AlexNet, GoogLeNet, VGG-16, MobileNet) and four LSTM RNNs (sentiment
analysis, two machine-translation instances, and a Listen-Attend-Spell
speech recognizer).  ResNet-50 is included additionally for the Fig 1
co-location motivation experiment.

CNNs build to a fixed :class:`~repro.models.graph.Graph`.  RNN builders
take sequence lengths (the dynamic dimension of Sec V-B) and unroll the
recurrent layers into one node per time step.
"""

from typing import Callable, Dict, List

from repro.models.graph import Graph
from repro.models.zoo.alexnet import build_alexnet
from repro.models.zoo.googlenet import build_googlenet
from repro.models.zoo.mobilenet import build_mobilenet
from repro.models.zoo.resnet import build_resnet50
from repro.models.zoo.rnn_asr import build_rnn_asr
from repro.models.zoo.rnn_mt import build_rnn_mt
from repro.models.zoo.rnn_sa import build_rnn_sa
from repro.models.zoo.vggnet import build_vggnet

#: Canonical benchmark names used throughout experiments, matching the
#: paper's x-axis labels.
CNN_BENCHMARKS = ("CNN-AN", "CNN-GN", "CNN-VN", "CNN-MN")
RNN_BENCHMARKS = ("RNN-SA", "RNN-MT1", "RNN-MT2", "RNN-ASR")
BENCHMARKS = CNN_BENCHMARKS + RNN_BENCHMARKS

__all__ = [
    "BENCHMARKS",
    "CNN_BENCHMARKS",
    "RNN_BENCHMARKS",
    "build_alexnet",
    "build_googlenet",
    "build_vggnet",
    "build_mobilenet",
    "build_resnet50",
    "build_rnn_sa",
    "build_rnn_mt",
    "build_rnn_asr",
    "build_benchmark",
    "is_rnn",
]


def is_rnn(benchmark: str) -> bool:
    """True when the named benchmark has a dynamic (sequence) dimension."""
    return benchmark in RNN_BENCHMARKS


def build_benchmark(
    name: str, input_len: int = 20, output_len: int = 20
) -> Graph:
    """Build a benchmark graph by its canonical name.

    ``input_len``/``output_len`` apply to the RNN benchmarks only (the
    time-unrolled sequence lengths); CNNs ignore them.
    """
    builders: Dict[str, Callable[[], Graph]] = {
        "CNN-AN": build_alexnet,
        "CNN-GN": build_googlenet,
        "CNN-VN": build_vggnet,
        "CNN-MN": build_mobilenet,
        "RESNET": build_resnet50,
    }
    if name in builders:
        return builders[name]()
    if name == "RNN-SA":
        return build_rnn_sa(input_len=input_len)
    if name == "RNN-MT1":
        return build_rnn_mt(input_len=input_len, output_len=output_len, variant=1)
    if name == "RNN-MT2":
        return build_rnn_mt(input_len=input_len, output_len=output_len, variant=2)
    if name == "RNN-ASR":
        return build_rnn_asr(input_len=input_len, output_len=output_len)
    raise KeyError(f"unknown benchmark: {name!r}")
