"""Parallel backend equivalence: rack-sharded PDES == the serial loop.

The contract under test (``src/repro/sched/parallel.py``,
``docs/performance.md``): ``ClusterConfig(workers=N)`` produces results
**bit-for-bit identical** to the serial event loop -- the full
``_encode_cluster_v2`` digest, ``events_processed`` included -- for
every routing policy, with unsupported configurations falling back to
the serial loop transparently.  ``last_run_parallel`` distinguishes the
two paths so a test can assert the fast path genuinely engaged (a
fallback would make the equality trivially true and the test
meaningless).

Also here: the shard-merge helpers the backend is built from (tracer
shard merge, profiler merge) and the pickle round-trips the worker
protocol relies on.
"""

from __future__ import annotations

import dataclasses
import math
import os
import pathlib
import pickle

import pytest

import helpers_golden
from repro.npu.config import NPUConfig
from repro.obs.profile import HotPathProfiler
from repro.obs.trace import Tracer, validate_chrome_trace
from repro.sched.cluster import ClusterConfig, ClusterScheduler, RoutingPolicy
from repro.sched.faults import ChurnSchedule
from repro.sched.interconnect import TransferRecord
from repro.sched.job import BatchConfig
from repro.sched.metrics import compute_cluster_metrics
from repro.sched.rack import RackTopology
from repro.sched.simulator import PreemptionMode, SimulationConfig
from repro.serving import AdmissionController, PredictionFeedback
from repro.workloads.trace import (
    DEFAULT_MEAN_INTERARRIVAL_CYCLES,
    synthetic_trace_runtimes,
)

ALL_ROUTINGS = tuple(RoutingPolicy)

#: Routings the parallel backend runs natively on a multi-rack fleet
#: (PREEMPTIVE_MIGRATION always takes the serial fallback: its per-event
#: migration pass gates on fabric state at other racks' event times).
FAST_PATH_ROUTINGS = tuple(
    routing
    for routing in ALL_ROUTINGS
    if routing is not RoutingPolicy.PREEMPTIVE_MIGRATION
)


def _sim_config() -> SimulationConfig:
    return SimulationConfig(
        npu=NPUConfig(), mode=PreemptionMode.DYNAMIC, mechanism="CHECKPOINT"
    )


def _trace(num_tasks: int, seed: int, num_devices: int):
    return synthetic_trace_runtimes(
        num_tasks,
        seed=seed,
        mean_interarrival_cycles=(
            DEFAULT_MEAN_INTERARRIVAL_CYCLES / num_devices
        ),
    )


def _run(routing, workers, *, num_devices=8, racks=None, seed=17,
         num_tasks=64, **cfg_kwargs):
    """One (scheduler, result) pair; fresh runtimes per call so serial
    and parallel runs never share mutable task state."""
    if routing is RoutingPolicy.WORK_STEALING and racks is not None:
        cfg_kwargs.setdefault("cross_rack_threshold_cycles", math.inf)
    runtimes = _trace(num_tasks, seed, num_devices)
    config = ClusterConfig(
        policy_name=cfg_kwargs.pop("policy_name", "PREMA"),
        routing=routing,
        seed=seed,
        racks=racks,
        workers=workers,
        **cfg_kwargs,
    )
    scheduler = ClusterScheduler(num_devices, _sim_config(), config=config)
    return scheduler, scheduler.run(runtimes)


def _assert_identical(serial, parallel) -> None:
    """Bit-for-bit: the full v2 digest plus the control-plane count."""
    assert (
        helpers_golden._encode_cluster_v2(serial)
        == helpers_golden._encode_cluster_v2(parallel)
    )
    assert serial.events_processed == parallel.events_processed


# ----------------------------------------------------------------------
# 1. The determinism contract: every routing, bit for bit
# ----------------------------------------------------------------------
class TestParallelEquivalence:
    @pytest.mark.parametrize(
        "routing", ALL_ROUTINGS, ids=[r.value for r in ALL_ROUTINGS]
    )
    def test_multirack_digest_equal(self, routing):
        topo = RackTopology.uniform(4, 2)
        _, serial = _run(routing, None, racks=topo)
        sched, parallel = _run(routing, 3, racks=topo)
        assert sched.last_run_parallel == (routing in FAST_PATH_ROUTINGS)
        _assert_identical(serial, parallel)

    def test_worker_count_sweep(self):
        """2/4/8 workers over 4 racks all reproduce the serial digest
        (8 > num_racks exercises empty-group dropping)."""
        topo = RackTopology.uniform(4, 2)
        _, serial = _run(RoutingPolicy.WORK_STEALING, None, racks=topo)
        for workers in (2, 4, 8):
            sched, parallel = _run(
                RoutingPolicy.WORK_STEALING, workers, racks=topo
            )
            assert sched.last_run_parallel
            _assert_identical(serial, parallel)

    def test_uneven_racks(self):
        topo = RackTopology.from_sizes([1, 2, 5])
        _, serial = _run(
            RoutingPolicy.ONLINE_PREDICTED, None, racks=topo, seed=23
        )
        sched, parallel = _run(
            RoutingPolicy.ONLINE_PREDICTED, 3, racks=topo, seed=23
        )
        assert sched.last_run_parallel
        _assert_identical(serial, parallel)

    def test_flat_static_shards_by_device(self):
        """Static routings need no rack topology: contiguous device
        groups are embarrassingly parallel."""
        _, serial = _run(RoutingPolicy.ROUND_ROBIN, None, racks=None)
        sched, parallel = _run(RoutingPolicy.ROUND_ROBIN, 4, racks=None)
        assert sched.last_run_parallel
        _assert_identical(serial, parallel)

    def test_rotating_policies_and_modes(self):
        """The golden-suite rotation: every device policy appears."""
        topo = RackTopology.uniform(2, 3)
        for index, policy_name in enumerate(("FCFS", "RRB", "SJF", "PREMA")):
            _, serial = _run(
                RoutingPolicy.ONLINE_PREDICTED, None, num_devices=6,
                racks=topo, seed=30 + index, num_tasks=32,
                policy_name=policy_name,
            )
            sched, parallel = _run(
                RoutingPolicy.ONLINE_PREDICTED, 2, num_devices=6,
                racks=topo, seed=30 + index, num_tasks=32,
                policy_name=policy_name,
            )
            assert sched.last_run_parallel
            _assert_identical(serial, parallel)

    def test_spawn_start_method(self, monkeypatch):
        """The protocol is start-method agnostic: spawn reproduces the
        fork (and serial) digest exactly."""
        src = str(pathlib.Path(helpers_golden.__file__).parents[1] / "src")
        monkeypatch.setenv("REPRO_PARALLEL_START_METHOD", "spawn")
        monkeypatch.setenv(
            "PYTHONPATH",
            src + os.pathsep + os.environ.get("PYTHONPATH", ""),
        )
        topo = RackTopology.uniform(2, 2)
        _, serial = _run(
            RoutingPolicy.WORK_STEALING, None, num_devices=4, racks=topo,
            num_tasks=24,
        )
        sched, parallel = _run(
            RoutingPolicy.WORK_STEALING, 2, num_devices=4, racks=topo,
            num_tasks=24,
        )
        assert sched.last_run_parallel
        _assert_identical(serial, parallel)

    def test_workers_one_runs_serial(self):
        sched, _ = _run(
            RoutingPolicy.WORK_STEALING, 1, racks=RackTopology.uniform(4, 2)
        )
        assert not sched.last_run_parallel

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ClusterScheduler(
                4, _sim_config(), config=ClusterConfig(workers=0)
            )

    def test_task_identity_preserved(self):
        """result.tasks are the caller's objects, mutated in place --
        exactly the serial loop's aliasing contract."""
        topo = RackTopology.uniform(2, 2)
        runtimes = _trace(16, 5, 4)
        config = ClusterConfig(
            routing=RoutingPolicy.ONLINE_PREDICTED, seed=5, racks=topo,
            workers=2,
        )
        sched = ClusterScheduler(4, _sim_config(), config=config)
        result = sched.run(runtimes)
        assert sched.last_run_parallel
        by_id = {task.task_id: task for task in runtimes}
        for task in result.tasks:
            assert task is by_id[task.task_id]
            assert task.completion_time is not None


# ----------------------------------------------------------------------
# 2. Transparent fallback: unsupported configs run the serial loop
# ----------------------------------------------------------------------
class TestParallelFallback:
    def _fallback(self, **cfg_kwargs):
        num_devices = cfg_kwargs.pop("num_devices", 8)
        sched, _ = _run(
            cfg_kwargs.pop("routing", RoutingPolicy.ONLINE_PREDICTED),
            3,
            num_devices=num_devices,
            num_tasks=16,
            **cfg_kwargs,
        )
        assert not sched.last_run_parallel

    def test_churn_falls_back(self):
        self._fallback(
            racks=RackTopology.uniform(4, 2),
            churn=ChurnSchedule.generate(
                num_devices=8, horizon_cycles=1e7, seed=2,
                fault_rate=4e-7,
            ),
        )

    def test_admission_falls_back(self):
        self._fallback(
            racks=RackTopology.uniform(4, 2),
            admission=AdmissionController(feedback=PredictionFeedback()),
        )

    def test_batching_falls_back(self):
        self._fallback(
            racks=RackTopology.uniform(4, 2),
            batching=BatchConfig(window_cycles=1000.0, max_batch=2),
        )

    def test_flat_online_falls_back(self):
        self._fallback(racks=None)

    def test_single_rack_falls_back(self):
        self._fallback(racks=RackTopology.uniform(1, 8))

    def test_finite_steal_threshold_falls_back(self):
        self._fallback(
            routing=RoutingPolicy.WORK_STEALING,
            racks=RackTopology.uniform(4, 2),
            cross_rack_threshold_cycles=1e5,
        )

    def test_token_ledger_falls_back(self):
        # PREMA reads tokens, so global_tokens=True builds the
        # cluster-wide ledger -- every device coupled through it.
        self._fallback(
            racks=RackTopology.uniform(4, 2), global_tokens=True
        )

    def test_fallback_digest_still_serial(self):
        """A fallback run with workers set is byte-identical to the same
        config without workers (the knob is a no-op, not a variant)."""
        topo = RackTopology.uniform(4, 2)
        churn = ChurnSchedule.generate(
            num_devices=8, horizon_cycles=1e7, seed=2, fault_rate=4e-7
        )
        _, serial = _run(
            RoutingPolicy.ONLINE_PREDICTED, None, racks=topo, churn=churn
        )
        _, fallback = _run(
            RoutingPolicy.ONLINE_PREDICTED, 3, racks=topo, churn=churn
        )
        _assert_identical(serial, fallback)


# ----------------------------------------------------------------------
# 3. Observability across shards: tracer and profiler merge
# ----------------------------------------------------------------------
class TestParallelObservability:
    def test_merged_trace_matches_serial_multiset(self):
        """Worker shards carry the trace; merged, it holds exactly the
        serial run's events and validates as a Chrome trace."""
        topo = RackTopology.uniform(2, 2)
        serial_tracer = Tracer()
        _, serial = _run(
            RoutingPolicy.WORK_STEALING, None, num_devices=4, racks=topo,
            num_tasks=32, tracer=serial_tracer,
        )
        parallel_tracer = Tracer()
        sched, parallel = _run(
            RoutingPolicy.WORK_STEALING, 2, num_devices=4, racks=topo,
            num_tasks=32, tracer=parallel_tracer,
        )
        assert sched.last_run_parallel
        _assert_identical(serial, parallel)
        assert sorted(map(repr, parallel_tracer.events)) == sorted(
            map(repr, serial_tracer.events)
        )
        counts = validate_chrome_trace(
            parallel_tracer.chrome_trace(), num_devices=4
        )
        assert counts["X"] > 0 and counts["i"] > 0

    def test_merged_profiler_covers_hot_sections(self):
        profiler = HotPathProfiler()
        sched, _ = _run(
            RoutingPolicy.WORK_STEALING, 2, num_devices=4,
            racks=RackTopology.uniform(2, 2), num_tasks=32,
            profiler=profiler,
        )
        assert sched.last_run_parallel
        report = profiler.report()
        # Worker shards contribute route/index/steal, the coordinator
        # its barrier wait; every count is a genuine event.
        assert {"route", "index", "sync"} <= set(report)
        assert all(entry["calls"] > 0 for entry in report.values())

    def test_merge_shards_orders_and_caps(self):
        """Direct unit: deterministic (ts, shard, emission) order and
        drop accounting at the cap."""
        base = Tracer(max_events=4)
        base.instant("route", "r0", 10.0)
        shard_a = Tracer()
        shard_a.instant("route", "a0", 5.0)
        shard_a.instant("route", "a1", 20.0)
        shard_b = Tracer()
        shard_b.instant("route", "b0", 5.0)
        shard_b.instant("route", "b1", 15.0)
        base.merge_shards([shard_a.events, shard_b.events])
        names = [event[2] for event in base.events]
        # ts order; ties (ts=5.0) resolve shard-then-emission.
        assert names == ["a0", "b0", "r0", "b1"]
        assert base.dropped == 1  # a1 fell past max_events


# ----------------------------------------------------------------------
# 4. Pickle round-trips (the worker protocol ships all of these)
# ----------------------------------------------------------------------
class TestPickleRoundTrip:
    def test_task_runtime(self):
        fresh = _trace(4, 9, 2)[1]
        clone = pickle.loads(pickle.dumps(fresh))
        assert clone.task_id == fresh.task_id
        assert clone.spec == fresh.spec
        # A completed runtime (full mutable state) round-trips too.
        _, result = _run(
            RoutingPolicy.LEAST_LOADED, None, num_devices=2,
            num_tasks=8, seed=9,
        )
        done = result.tasks[0]
        assert helpers_golden._encode_task(
            pickle.loads(pickle.dumps(done))
        ) == helpers_golden._encode_task(done)

    def test_transfer_record(self):
        record = TransferRecord(
            task_id=3, src_device=0, dst_device=5, num_bytes=2048.0,
            request_cycles=10.0, start_cycles=12.0, end_cycles=40.0,
        )
        assert pickle.loads(pickle.dumps(record)) == record

    def test_cluster_result(self):
        _, result = _run(
            RoutingPolicy.WORK_STEALING, None, num_devices=4,
            racks=RackTopology.uniform(2, 2), num_tasks=16,
        )
        clone = pickle.loads(pickle.dumps(result))
        assert helpers_golden._encode_cluster_v2(clone) == (
            helpers_golden._encode_cluster_v2(result)
        )

    def test_cluster_metrics(self):
        _, result = _run(
            RoutingPolicy.ONLINE_PREDICTED, None, num_devices=4,
            racks=RackTopology.uniform(2, 2), num_tasks=16,
        )
        metrics = compute_cluster_metrics(result)
        clone = pickle.loads(pickle.dumps(metrics))
        assert dataclasses.asdict(clone) == dataclasses.asdict(metrics)

    def test_profiler(self):
        profiler = HotPathProfiler()
        profiler.add("route", 1200)
        clone = pickle.loads(pickle.dumps(profiler))
        assert clone.nanos == profiler.nanos
        assert clone.counts == profiler.counts
