"""Fig 14: 95%-ile tail latency of high-priority tasks, per benchmark.

Four configurations: isolated execution, NP-FCFS, preemptive SJF
(static CHECKPOINT) and PREMA (dynamic).  High-priority tasks are pooled
per benchmark across the workload ensemble; the paper's finding is that
NP-FCFS inflates the tail up to ~85x over isolated while PREMA stays
within ~1.4-1.6x.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.analysis.reporting import format_table
from repro.analysis.runner import SchedulerSetup, run_ensemble
from repro.core.tokens import Priority
from repro.npu.config import NPUConfig
from repro.sched.metrics import tail_latency_cycles
from repro.sched.prepare import TaskFactory
from repro.sched.simulator import PreemptionMode
from repro.workloads.specs import WorkloadSpec

SETUPS = (
    SchedulerSetup("NP-FCFS", "FCFS", PreemptionMode.NP),
    SchedulerSetup("P-SJF", "SJF", PreemptionMode.STATIC),
    SchedulerSetup("PREMA", "PREMA", PreemptionMode.DYNAMIC),
)

BENCHMARKS = ("CNN-AN", "CNN-GN", "CNN-VN", "CNN-MN",
              "RNN-SA", "RNN-MT1", "RNN-MT2", "RNN-ASR")


@dataclasses.dataclass(frozen=True)
class TailRow:
    """One benchmark's high-priority tail latencies (ms) per policy."""

    benchmark: str
    isolated_ms: float
    tail_ms_by_policy: Dict[str, float]

    def slowdown(self, label: str) -> float:
        return self.tail_ms_by_policy[label] / self.isolated_ms


def run_fig14(
    workloads: Sequence[WorkloadSpec],
    config: Optional[NPUConfig] = None,
    factory: Optional[TaskFactory] = None,
    percentile: float = 95.0,
) -> List[TailRow]:
    config = config or NPUConfig()
    factory = factory or TaskFactory(config)
    outcomes = run_ensemble(SETUPS, workloads, factory=factory, npu=config)
    rows: List[TailRow] = []
    for benchmark in BENCHMARKS:
        # Isolated 95%-ile: the per-instance isolated times of the pooled
        # high-priority tasks (RNN instances vary with sequence lengths).
        reference_tasks = [
            task
            for task in outcomes["NP-FCFS"].all_tasks()
            if task.spec.benchmark == benchmark
            and task.spec.priority == Priority.HIGH
        ]
        if not reference_tasks:
            continue  # this ensemble drew no high-priority instance
        isolated = [t.isolated_cycles for t in reference_tasks]
        isolated_ms = config.cycles_to_ms(
            sorted(isolated)[max(0, int(len(isolated) * percentile / 100) - 1)]
        )
        tails: Dict[str, float] = {}
        for setup in SETUPS:
            tasks = outcomes[setup.label].all_tasks()
            try:
                tail = tail_latency_cycles(
                    tasks,
                    percentile=percentile,
                    priority=Priority.HIGH,
                    benchmark=benchmark,
                )
            except ValueError:
                continue
            tails[setup.label] = config.cycles_to_ms(tail)
        rows.append(
            TailRow(
                benchmark=benchmark,
                isolated_ms=isolated_ms,
                tail_ms_by_policy=tails,
            )
        )
    return rows


def average_slowdowns(rows: Sequence[TailRow]) -> Dict[str, float]:
    """Mean tail slowdown vs isolated per policy (the paper's 21x / 1.4x)."""
    sums: Dict[str, List[float]] = {}
    for row in rows:
        for label in row.tail_ms_by_policy:
            sums.setdefault(label, []).append(row.slowdown(label))
    return {
        label: sum(values) / len(values) for label, values in sums.items()
    }


def format_fig14(rows: Sequence[TailRow]) -> str:
    labels = [setup.label for setup in SETUPS]
    table_rows = []
    for row in rows:
        table_rows.append(
            [row.benchmark, row.isolated_ms]
            + [row.tail_ms_by_policy.get(label, float("nan")) for label in labels]
        )
    slowdowns = average_slowdowns(rows)
    footer = "  avg slowdown vs isolated: " + ", ".join(
        f"{label}={slowdowns.get(label, float('nan')):.1f}x" for label in labels
    )
    return (
        format_table(
            ["benchmark", "isolated_ms"] + [f"{label}_ms" for label in labels],
            table_rows,
            title="Fig 14: 95%-ile tail latency of high-priority tasks",
        )
        + "\n"
        + footer
    )
