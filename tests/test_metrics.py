"""Eq 1-2 metrics, SLA accounting, and tail latency."""

import pytest

from repro.core.context import TaskContext
from repro.core.tokens import Priority
from repro.sched.metrics import (
    aggregate_metrics,
    compute_metrics,
    improvement_over_baseline,
    priority_weight,
    sla_violation_rate,
    tail_latency_cycles,
    tail_percentile,
)
from repro.sched.task import TaskRuntime
from repro.workloads.specs import TaskSpec


class FakeProfile:
    """Minimal stand-in so metric math can be hand-checked."""

    def __init__(self, total_cycles):
        self.total_cycles = total_cycles


def make_done_task(task_id, isolated, turnaround, priority=Priority.MEDIUM,
                   benchmark="CNN-AN"):
    spec = TaskSpec(
        task_id=task_id, benchmark=benchmark, batch=1, priority=priority,
        arrival_cycles=0.0,
    )
    task = TaskRuntime(
        spec=spec,
        profile=FakeProfile(isolated),  # type: ignore[arg-type]
        context=TaskContext(task_id=task_id, priority=priority),
    )
    task.completion_time = turnaround
    return task


class TestEquationOne:
    def test_ntt_and_antt(self):
        tasks = [
            make_done_task(0, isolated=100.0, turnaround=200.0),
            make_done_task(1, isolated=100.0, turnaround=400.0),
        ]
        metrics = compute_metrics(tasks)
        assert metrics.ntt_by_task[0] == pytest.approx(2.0)
        assert metrics.ntt_by_task[1] == pytest.approx(4.0)
        assert metrics.antt == pytest.approx(3.0)

    def test_stp(self):
        tasks = [
            make_done_task(0, isolated=100.0, turnaround=200.0),
            make_done_task(1, isolated=100.0, turnaround=400.0),
        ]
        assert compute_metrics(tasks).stp == pytest.approx(0.5 + 0.25)

    def test_stp_bounded_by_task_count(self):
        tasks = [
            make_done_task(i, isolated=100.0, turnaround=100.0 + 10 * i)
            for i in range(4)
        ]
        assert compute_metrics(tasks).stp <= 4.0

    def test_isolated_run_is_perfect(self):
        tasks = [make_done_task(0, isolated=100.0, turnaround=100.0)]
        metrics = compute_metrics(tasks)
        assert metrics.antt == pytest.approx(1.0)
        assert metrics.stp == pytest.approx(1.0)
        assert metrics.fairness == pytest.approx(1.0)

    def test_incomplete_task_rejected(self):
        task = make_done_task(0, 100.0, 200.0)
        task.completion_time = None
        with pytest.raises(ValueError):
            compute_metrics([task])


class TestEquationTwo:
    def test_fairness_equal_progress_equal_weights(self):
        tasks = [
            make_done_task(0, isolated=100.0, turnaround=200.0),
            make_done_task(1, isolated=300.0, turnaround=600.0),
        ]
        assert compute_metrics(tasks).fairness == pytest.approx(1.0)

    def test_fairness_penalizes_unequal_progress(self):
        tasks = [
            make_done_task(0, isolated=100.0, turnaround=100.0),
            make_done_task(1, isolated=100.0, turnaround=400.0),
        ]
        assert compute_metrics(tasks).fairness == pytest.approx(0.25)

    def test_priority_weights_change_expected_share(self):
        # A high-priority task is *expected* to progress more; equal
        # speedups therefore count as unfair to the high-priority task.
        tasks = [
            make_done_task(0, 100.0, 200.0, priority=Priority.HIGH),
            make_done_task(1, 100.0, 200.0, priority=Priority.LOW),
        ]
        metrics = compute_metrics(tasks)
        assert metrics.fairness == pytest.approx(1.0 / 9.0)

    def test_priority_weight_values(self):
        assert priority_weight(Priority.LOW) == 1
        assert priority_weight(Priority.MEDIUM) == 3
        assert priority_weight(Priority.HIGH) == 9

    def test_fairness_in_unit_interval(self):
        tasks = [
            make_done_task(0, 50.0, 70.0, priority=Priority.LOW),
            make_done_task(1, 100.0, 900.0, priority=Priority.HIGH),
            make_done_task(2, 10.0, 15.0, priority=Priority.MEDIUM),
        ]
        assert 0.0 < compute_metrics(tasks).fairness <= 1.0


class TestSla:
    def test_violation_rate(self):
        tasks = [
            make_done_task(0, isolated=100.0, turnaround=150.0),
            make_done_task(1, isolated=100.0, turnaround=500.0),
        ]
        assert sla_violation_rate(tasks, 2.0) == pytest.approx(0.5)
        assert sla_violation_rate(tasks, 10.0) == 0.0

    def test_rate_monotone_in_target(self):
        tasks = [
            make_done_task(i, isolated=100.0, turnaround=100.0 * (i + 1))
            for i in range(6)
        ]
        rates = [sla_violation_rate(tasks, float(n)) for n in range(1, 8)]
        assert rates == sorted(rates, reverse=True)

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            sla_violation_rate([make_done_task(0, 1.0, 1.0)], 0.0)


class TestTailLatency:
    def test_percentile_of_filtered_population(self):
        tasks = [
            make_done_task(i, 100.0, 100.0 * (i + 1), priority=Priority.HIGH)
            for i in range(10)
        ]
        tail = tail_latency_cycles(tasks, percentile=95.0)
        assert tail >= 900.0

    def test_benchmark_filter(self):
        tasks = [
            make_done_task(0, 100.0, 150.0, priority=Priority.HIGH,
                           benchmark="CNN-AN"),
            make_done_task(1, 100.0, 950.0, priority=Priority.HIGH,
                           benchmark="CNN-VN"),
        ]
        assert tail_latency_cycles(tasks, benchmark="CNN-AN") == pytest.approx(150.0)

    def test_empty_filter_raises(self):
        tasks = [make_done_task(0, 100.0, 150.0, priority=Priority.LOW)]
        with pytest.raises(ValueError):
            tail_latency_cycles(tasks, priority=Priority.HIGH)

    def test_bad_percentile_raises(self):
        tasks = [make_done_task(0, 100.0, 150.0, priority=Priority.HIGH)]
        with pytest.raises(ValueError):
            tail_latency_cycles(tasks, percentile=0.0)


class TestTailPercentileMethod:
    """The conservative small-sample tail rule the cluster p99s use.

    With 10 samples, linear interpolation reports a p99 that *no sample
    ever experienced* (an optimistic blend of the top two); the pinned
    ``method="higher"`` returns an actual observed latency at or above
    the requested rank.  This is the regression pin for the
    ``p99_high_priority_turnaround_cycles`` / ``recovery_p99_cycles``
    switch.
    """

    SAMPLES = [100.0 * (i + 1) for i in range(10)]  # 100..1000

    def test_higher_disagrees_with_linear_on_10_samples(self):
        import numpy as np

        linear = float(np.percentile(self.SAMPLES, 99.0))  # 991.0
        conservative = tail_percentile(self.SAMPLES, 99.0)
        assert conservative == pytest.approx(1000.0)
        assert conservative > linear
        assert linear not in self.SAMPLES  # interpolation invents values
        assert conservative in self.SAMPLES

    def test_returns_observed_sample_at_every_rank(self):
        for pct in (50.0, 90.0, 95.0, 99.0):
            assert tail_percentile(self.SAMPLES, pct) in self.SAMPLES

    def test_cluster_p99s_use_conservative_rule(self):
        """10 HIGH-priority completions: the reported p99 turnaround must
        be the max observed sample, not an interpolated blend."""
        from repro.sched.metrics import compute_cluster_metrics

        tasks = [
            make_done_task(i, 100.0, 100.0 * (i + 1), priority=Priority.HIGH)
            for i in range(10)
        ]
        result = FakeClusterResult(tasks)
        metrics = compute_cluster_metrics(result)
        turnarounds = [t.turnaround_cycles for t in tasks]
        assert metrics.p99_high_priority_turnaround_cycles == pytest.approx(
            max(turnarounds)
        )


class TestAggregation:
    def test_means_across_workloads(self):
        w1 = [make_done_task(0, 100.0, 200.0)]
        w2 = [make_done_task(0, 100.0, 400.0)]
        ensemble = aggregate_metrics([w1, w2])
        assert ensemble.num_workloads == 2
        assert ensemble.mean_antt == pytest.approx(3.0)

    def test_improvement_directions(self):
        better = aggregate_metrics([[make_done_task(0, 100.0, 150.0)]])
        worse = aggregate_metrics([[make_done_task(0, 100.0, 300.0)]])
        improvement = improvement_over_baseline(better, worse)
        assert improvement["antt"] == pytest.approx(2.0)
        assert improvement["stp"] == pytest.approx(2.0)

    def test_empty_ensemble_rejected(self):
        with pytest.raises(ValueError):
            aggregate_metrics([])


class TestSlaEdgeCases:
    def test_empty_task_list_rejected(self):
        """An empty population has no violation rate: explicit error, not
        a silent 0.0 that would read as 'SLA perfect'."""
        with pytest.raises(ValueError, match="at least one task"):
            sla_violation_rate([], 2.0)

    def test_incomplete_task_rejected(self):
        task = make_done_task(0, 100.0, 200.0)
        task.completion_time = None
        with pytest.raises(ValueError, match="not completed"):
            sla_violation_rate([task], 2.0)


class FakeClusterResult:
    """Duck-typed stand-in for ClusterResult (serving-metric math)."""

    def __init__(self, tasks, rejected=(), makespan=1000.0,
                 deferral_count=0):
        for task in tasks:
            task.first_dispatch_time = task.spec.arrival_cycles
        self.tasks = tuple(tasks)
        self.rejected_tasks = tuple(rejected)
        self.makespan_cycles = makespan
        self.migrations = ()
        self.deferral_count = deferral_count

    def device_utilization(self):
        return [0.5, 0.5]


class TestClusterServingMetrics:
    def test_per_class_attainment_counts_rejections(self):
        from repro.sched.metrics import compute_cluster_metrics

        completed = [
            # Interactive (HIGH): default target 4x -> met / missed.
            make_done_task(0, 100.0, 300.0, priority=Priority.HIGH),
            make_done_task(1, 100.0, 900.0, priority=Priority.HIGH),
            # Batch (LOW): default target 16x -> met.
            make_done_task(2, 100.0, 1500.0, priority=Priority.LOW),
        ]
        rejected = [make_done_task(3, 100.0, 1.0, priority=Priority.HIGH)]
        rejected[0].completion_time = None
        result = FakeClusterResult(completed, rejected, makespan=1000.0,
                                   deferral_count=5)
        metrics = compute_cluster_metrics(result)
        # Interactive: 1 met of 3 offered (one completed-missed, one
        # rejected); batch: 1 of 1.
        assert metrics.sla_attainment_by_class["interactive"] == \
            pytest.approx(1.0 / 3.0)
        assert metrics.sla_attainment_by_class["batch"] == 1.0
        assert metrics.sla_attainment == pytest.approx(2.0 / 4.0)
        # Violation rates cover completed tasks only.
        assert metrics.sla_violation_rate_by_class["interactive"] == \
            pytest.approx(0.5)
        assert metrics.sla_violation_rate_by_class["batch"] == 0.0
        assert metrics.rejection_rate == pytest.approx(0.25)
        assert metrics.deferral_count == 5
        # Goodput: met isolated cycles (100 + 100) per makespan cycle.
        assert metrics.goodput == pytest.approx(0.2)

    def test_explicit_qos_tag_overrides_priority(self):
        from repro.sched.metrics import compute_cluster_metrics

        import dataclasses as _dc
        task = make_done_task(0, 100.0, 500.0, priority=Priority.HIGH)
        task.spec = _dc.replace(task.spec, qos="batch")
        metrics = compute_cluster_metrics(FakeClusterResult([task]))
        # 5x slowdown: misses interactive's 4x but meets batch's 16x.
        assert metrics.sla_attainment_by_class == {"batch": 1.0}
